"""Fault injection and retry machinery for score-function evaluations.

Production hardening is only trustworthy if the failure paths are actually
exercised, so this module ships the chaos tooling alongside the defenses:

* :class:`FaultPlan` — decides, from a global evaluation counter, whether
  the i-th evaluation misbehaves and how (raise / stall / NaN).
* :class:`FaultyFunction` / :class:`FlakyEvaluator` — wrap any
  :class:`~repro.functions.base.SetFunction` (and its incremental
  evaluator) so that scheduled evaluations raise
  :class:`~repro.runtime.errors.EvaluationError`, sleep, or return NaN.
  Both batch and incremental reads share one counter, so a plan means the
  same thing whichever access pattern a solver uses.
* :class:`RetryingFunction` — the defense: retries transient
  :class:`EvaluationError` with exponential backoff, re-raising once the
  attempts are exhausted.

Disk I/O gets the same treatment for the durable-ingest layer:

* :class:`DiskFaultPlan` — decides, from a per-file write counter, whether
  the i-th log write misbehaves and how (torn write / short write / fsync
  failure).
* :class:`FaultyLogFile` — wraps a binary file object so scheduled writes
  stop partway (torn: prefix on disk, then ``OSError``), silently lose
  their suffix (short), or fail at ``fsync`` time — the three crash shapes
  the write-ahead log's recovery path must survive.

All sleeping goes through an injectable ``sleeper`` so tests can run the
stall and backoff paths in virtual time.
"""

from __future__ import annotations

import time
from typing import Callable, FrozenSet, Iterable, Optional

from repro.functions.base import IncrementalEvaluator, SetFunction
from repro.obs.metrics import active_registry
from repro.obs.trace import active_tracer
from repro.runtime.errors import EvaluationError


def _record_fault(mode: str, index: int) -> None:
    """Trace/count one injected fault (faulty evaluations only)."""
    active_tracer().event("fault.injected", mode=mode, index=index)
    registry = active_registry()
    if registry.enabled:
        registry.counter(
            "brs_faults_injected_total", help="scheduled faults injected"
        ).inc()


def _record_retry(attempt: int, delay: float) -> None:
    """Trace/count one retry of a transient evaluation failure."""
    active_tracer().event("fault.retry", attempt=attempt, delay=delay)
    registry = active_registry()
    if registry.enabled:
        registry.counter(
            "brs_retries_total", help="transient evaluation failures retried"
        ).inc()

#: Supported fault modes.
FAULT_MODES = ("raise", "stall", "nan")


class FaultPlan:
    """Schedule of which evaluations misbehave, by global evaluation index.

    Args:
        mode: ``"raise"`` (EvaluationError), ``"stall"`` (sleep, then answer
            normally), or ``"nan"`` (return NaN).
        first: the first ``first`` evaluations are faulty — the shape of a
            *transient* outage that a retry rides out.
        every: every ``every``-th evaluation (1-based) is faulty — a
            periodic / persistent failure.  ``every=1`` fails always.
        indices: explicit faulty evaluation indices (0-based).
        stall_seconds: sleep length for ``"stall"`` faults.

    Raises:
        ValueError: on an unknown mode.
    """

    def __init__(
        self,
        mode: str = "raise",
        first: int = 0,
        every: Optional[int] = None,
        indices: Iterable[int] = (),
        stall_seconds: float = 0.05,
    ) -> None:
        if mode not in FAULT_MODES:
            raise ValueError(f"unknown fault mode {mode!r}; expected {FAULT_MODES}")
        self.mode = mode
        self.first = first
        self.every = every
        self.indices: FrozenSet[int] = frozenset(indices)
        self.stall_seconds = stall_seconds

    def is_faulty(self, index: int) -> bool:
        """True when the ``index``-th evaluation (0-based) should fail."""
        if index < self.first:
            return True
        if self.every is not None and (index + 1) % self.every == 0:
            return True
        return index in self.indices


class FaultyFunction(SetFunction):
    """A score function that misbehaves on scheduled evaluations.

    Wraps ``inner`` and injects the faults described by ``plan``.  The
    evaluation counter is shared between :meth:`value` and the incremental
    evaluator returned by :meth:`evaluator`, and keeps advancing on faulty
    evaluations, so ``FaultPlan(first=3)`` means "the first three score
    reads fail however they are issued".

    Args:
        inner: the real score function.
        plan: the fault schedule.
        sleeper: sleep implementation for stall faults (injectable).
    """

    def __init__(
        self,
        inner: SetFunction,
        plan: FaultPlan,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner
        self.plan = plan
        self._sleeper = sleeper
        self.n_evals = 0
        self.n_faults = 0

    def _tick(self, objects: Optional[Iterable[int]]) -> Optional[float]:
        """Advance the counter; return NaN for a nan-fault, else None.

        Raises:
            EvaluationError: for a raise-mode fault.
        """
        index = self.n_evals
        self.n_evals += 1
        if not self.plan.is_faulty(index):
            return None
        self.n_faults += 1
        _record_fault(self.plan.mode, index)
        if self.plan.mode == "raise":
            raise EvaluationError(
                f"injected failure on evaluation #{index}", object_ids=objects
            )
        if self.plan.mode == "stall":
            self._sleeper(self.plan.stall_seconds)
            return None
        return float("nan")

    def value(self, objects: Iterable[int]) -> float:
        """Evaluate ``inner`` unless this evaluation is scheduled to fail."""
        ids = list(objects)
        nan = self._tick(ids)
        if nan is not None:
            return nan
        return self.inner.value(ids)

    def evaluator(self) -> IncrementalEvaluator:
        """An incremental evaluator whose value reads share the fault plan."""
        return FlakyEvaluator(self.inner.evaluator(), self)


class FlakyEvaluator(IncrementalEvaluator):
    """Incremental evaluator wrapper that injects faults on value reads.

    push/pop/reset forward untouched (bookkeeping is not where production
    evaluators fail); every read of :attr:`value` counts as one evaluation
    against the owning :class:`FaultyFunction`'s plan.
    """

    def __init__(self, inner: IncrementalEvaluator, owner: FaultyFunction) -> None:
        self._inner = inner
        self._owner = owner

    def push(self, obj_id: int) -> None:
        self._inner.push(obj_id)

    def pop(self, obj_id: int) -> None:
        self._inner.pop(obj_id)

    @property
    def value(self) -> float:
        nan = self._owner._tick(None)
        if nan is not None:
            return nan
        return self._inner.value

    def reset(self) -> None:
        self._inner.reset()


#: Supported disk fault modes.
DISK_FAULT_MODES = ("torn", "short", "fsync")


class DiskFaultPlan:
    """Schedule of which log writes misbehave, by per-file write index.

    Mirrors :class:`FaultPlan`, but for the write path of the durable
    ingest log rather than score evaluations.

    Args:
        mode: ``"torn"`` (a prefix reaches the disk, then the write raises
            — the shape of a crash mid-append), ``"short"`` (a prefix
            reaches the disk and the write *succeeds silently* — an
            unchecked kernel short write), or ``"fsync"`` (the data is
            written but ``fsync`` raises).
        first: the first ``first`` writes are faulty.
        every: every ``every``-th write (1-based) is faulty.
        indices: explicit faulty write indices (0-based).
        keep_fraction: fraction of each faulty write's bytes that reach
            the disk (at least one byte is dropped for non-empty writes).
        max_faults: total faults the plan will inject across *all* files
            sharing it (``None`` = unbounded).  Write indices restart at
            0 per file, so a plan with ``indices=[0]`` would otherwise
            re-fault every time the writer reopens the log — this cap
            models a transient error that clears on retry.

    Raises:
        ValueError: on an unknown mode or a fraction outside [0, 1].
    """

    def __init__(
        self,
        mode: str = "torn",
        first: int = 0,
        every: Optional[int] = None,
        indices: Iterable[int] = (),
        keep_fraction: float = 0.5,
        max_faults: Optional[int] = None,
    ) -> None:
        if mode not in DISK_FAULT_MODES:
            raise ValueError(
                f"unknown disk fault mode {mode!r}; expected {DISK_FAULT_MODES}"
            )
        if not 0.0 <= keep_fraction <= 1.0:
            raise ValueError(f"keep_fraction must be in [0, 1], got {keep_fraction}")
        self.mode = mode
        self.first = first
        self.every = every
        self.indices: FrozenSet[int] = frozenset(indices)
        self.keep_fraction = keep_fraction
        self.max_faults = max_faults
        self.faults_injected = 0

    def is_faulty(self, index: int) -> bool:
        """True when the ``index``-th write (0-based) should fail."""
        if self.max_faults is not None and self.faults_injected >= self.max_faults:
            return False
        if index < self.first:
            return True
        if self.every is not None and (index + 1) % self.every == 0:
            return True
        return index in self.indices


class FaultyLogFile:
    """A binary file wrapper that injects scheduled disk faults.

    Duck-types the small surface the write-ahead log uses (``write``,
    ``flush``, ``fileno``, ``close``); pass one to
    :class:`repro.ingest.wal.IngestLog` via its ``opener`` hook.

    Attributes:
        n_writes: writes attempted so far (faulty ones included).
        n_faults: faults injected so far.
    """

    def __init__(self, inner, plan: DiskFaultPlan) -> None:
        self._inner = inner
        self.plan = plan
        self.n_writes = 0
        self.n_faults = 0

    def write(self, data: bytes) -> int:
        """Write ``data``, torn or shortened when the plan says so.

        Raises:
            OSError: for a torn-mode fault (after the prefix reached the
                inner file — the crash-mid-append shape).
        """
        index = self.n_writes
        self.n_writes += 1
        if not self.plan.is_faulty(index) or self.plan.mode == "fsync":
            return self._inner.write(data)
        self.n_faults += 1
        self.plan.faults_injected += 1
        _record_fault(f"disk-{self.plan.mode}", index)
        kept = int(len(data) * self.plan.keep_fraction)
        if data:
            kept = min(kept, len(data) - 1)  # always drop at least one byte
        self._inner.write(data[:kept])
        self._inner.flush()
        if self.plan.mode == "torn":
            raise OSError(f"injected torn write on log write #{index}")
        return kept  # "short": the caller is not told anything went wrong

    def flush(self) -> None:
        self._inner.flush()

    def fileno(self) -> int:
        """Delegate so ``os.fsync`` works; fsync faults raise from here.

        Raises:
            OSError: when the *previous* write was scheduled as an fsync
                fault (the log calls ``fileno`` only to fsync).
        """
        if self.plan.mode == "fsync" and self.plan.is_faulty(self.n_writes - 1):
            self.n_faults += 1
            self.plan.faults_injected += 1
            _record_fault("disk-fsync", self.n_writes - 1)
            raise OSError(
                f"injected fsync failure after log write #{self.n_writes - 1}"
            )
        return self._inner.fileno()

    def close(self) -> None:
        self._inner.close()

    @property
    def closed(self) -> bool:
        return bool(getattr(self._inner, "closed", False))


class RetryingFunction(SetFunction):
    """Retry transient :class:`EvaluationError` with exponential backoff.

    Args:
        inner: the (possibly faulty) score function.
        max_retries: additional attempts after the first failure; a fault
            that persists through all of them is re-raised.
        backoff: initial sleep before the first retry, doubled each attempt.
        sleeper: sleep implementation (injectable for tests).

    Raises:
        ValueError: on a negative retry count or backoff.
    """

    def __init__(
        self,
        inner: SetFunction,
        max_retries: int = 3,
        backoff: float = 0.01,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {backoff}")
        self.inner = inner
        self.max_retries = max_retries
        self.backoff = backoff
        self._sleeper = sleeper
        self.n_retries = 0

    def value(self, objects: Iterable[int]) -> float:
        """Evaluate, retrying transient failures before giving up."""
        ids = list(objects)
        delay = self.backoff
        for attempt in range(self.max_retries + 1):
            try:
                return self.inner.value(ids)
            except EvaluationError:
                if attempt == self.max_retries:
                    raise
                self.n_retries += 1
                _record_retry(attempt, delay)
                if delay > 0:
                    self._sleeper(delay)
                delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def evaluator(self) -> IncrementalEvaluator:
        """An incremental evaluator whose value reads are retried the same way."""
        return _RetryingEvaluator(self.inner.evaluator(), self)


class _RetryingEvaluator(IncrementalEvaluator):
    """Incremental wrapper applying the owner's retry policy to value reads."""

    def __init__(self, inner: IncrementalEvaluator, owner: RetryingFunction) -> None:
        self._inner = inner
        self._owner = owner

    def push(self, obj_id: int) -> None:
        self._inner.push(obj_id)

    def pop(self, obj_id: int) -> None:
        self._inner.pop(obj_id)

    @property
    def value(self) -> float:
        owner = self._owner
        delay = owner.backoff
        for attempt in range(owner.max_retries + 1):
            try:
                return self._inner.value
            except EvaluationError:
                if attempt == owner.max_retries:
                    raise
                owner.n_retries += 1
                _record_retry(attempt, delay)
                if delay > 0:
                    owner._sleeper(delay)
                delay *= 2
        raise AssertionError("unreachable")  # pragma: no cover

    def reset(self) -> None:
        self._inner.reset()
