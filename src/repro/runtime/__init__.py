"""Deadline-aware anytime execution: budgets, faults, and error taxonomy.

The interactive workflow the paper motivates — refine the rectangle, re-run,
repeat — only works if every run comes back quickly with *something*.  This
subpackage provides the three pieces that make the solvers behave that way:

* :class:`~repro.runtime.budget.Budget` — a cooperative wall-clock deadline
  and/or evaluation cap threaded through the best-first loops; on expiry
  solvers return an anytime :class:`~repro.core.result.BRSResult` with a
  sound optimality gap instead of raising or running on.
* :mod:`~repro.runtime.faults` — fault injection
  (:class:`~repro.runtime.faults.FaultyFunction`) and the matching defense
  (:class:`~repro.runtime.faults.RetryingFunction`, exponential backoff).
* :mod:`~repro.runtime.errors` — the structured exception taxonomy
  (:class:`~repro.runtime.errors.BRSError` and friends).

See ``docs/robustness.md`` for the budget model and degradation ladder.
"""

from repro.runtime.budget import (
    Budget,
    ambient_budget,
    budget_scope,
    effective_budget,
)
from repro.runtime.errors import (
    AdmissionRejectedError,
    BRSError,
    BudgetExceededError,
    EvaluationError,
    IngestError,
    InternalInvariantError,
    InvalidQueryError,
    LogCorruptionError,
    WorkerFailureError,
)
from repro.runtime.faults import (
    DiskFaultPlan,
    FaultPlan,
    FaultyFunction,
    FaultyLogFile,
    FlakyEvaluator,
    RetryingFunction,
)

__all__ = [
    "AdmissionRejectedError",
    "BRSError",
    "Budget",
    "BudgetExceededError",
    "DiskFaultPlan",
    "EvaluationError",
    "FaultPlan",
    "FaultyFunction",
    "FaultyLogFile",
    "FlakyEvaluator",
    "IngestError",
    "InternalInvariantError",
    "InvalidQueryError",
    "LogCorruptionError",
    "RetryingFunction",
    "WorkerFailureError",
    "ambient_budget",
    "budget_scope",
    "effective_budget",
]
