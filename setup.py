"""Setuptools shim.

The canonical build configuration lives in pyproject.toml; this file exists
so that ``pip install -e .`` / ``python setup.py develop`` work on offline
environments whose setuptools predates PEP 660 editable-wheel support (no
``wheel`` package available).  The console-script entry point is repeated
here because old setuptools does not read ``[project.scripts]``.
"""

from setuptools import setup

setup(
    entry_points={"console_scripts": ["repro-brs = repro.cli:main"]},
)
