"""Run-ledger tests: round trip, torn tails, and regression comparison."""

import json

import pytest

from repro.cli import main as cli_main
from repro.obs.ledger import (
    LEDGER_SCHEMA_VERSION,
    Ledger,
    RunRecord,
    compare,
    record_from_status,
)

ROWS = [
    {"experiment": "fig19", "status": "ok", "seconds": 0.5,
     "error": None, "metrics": {"slices": 12}},
    {"experiment": "table5", "status": "ok", "seconds": 0.2,
     "error": None, "metrics": {}},
    {"experiment": "lint", "status": "ok", "seconds": 0.1,
     "error": None, "metrics": None},
]


def _record(label="", rows=ROWS):
    return record_from_status([dict(r) for r in rows], label=label)


def _scaled(rows, experiment, factor):
    out = []
    for row in rows:
        row = dict(row)
        if row["experiment"] == experiment:
            row["seconds"] = row["seconds"] * factor
        out.append(row)
    return out


class TestRecordFromStatus:
    def test_keeps_identity_and_drops_error_text(self):
        rows = [dict(ROWS[0], error="Traceback (most recent call last) ...")]
        record = _record(rows=rows)
        assert record.schema == LEDGER_SCHEMA_VERSION
        assert record.git_rev != ""
        assert record.host["cpu_count"] >= 1
        (row,) = record.experiments
        assert row == {
            "experiment": "fig19", "status": "ok", "seconds": 0.5,
            "metrics": {"slices": 12},
        }

    def test_rows_without_experiment_key_skipped(self):
        record = _record(rows=[{"status": "ok"}, ROWS[0]])
        assert len(record.experiments) == 1


class TestLedgerFile:
    def test_append_read_round_trip(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        ledger = Ledger(path)
        first = _record(label="a")
        second = _record(label="b")
        ledger.append(first)
        ledger.append(second)
        records = ledger.read()
        assert [r.run_id for r in records] == [first.run_id, second.run_id]
        assert records[0].experiment_map()["fig19"]["seconds"] == 0.5

    def test_missing_file_is_empty(self, tmp_path):
        assert Ledger(str(tmp_path / "nope.jsonl")).read() == []

    def test_latest_filters_by_label(self, tmp_path):
        ledger = Ledger(str(tmp_path / "ledger.jsonl"))
        tagged = _record(label="nightly")
        ledger.append(tagged)
        ledger.append(_record(label="ci"))
        assert ledger.latest("nightly").run_id == tagged.run_id
        assert ledger.latest("absent") is None

    def test_torn_final_line_skipped_with_warning(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = Ledger(str(path))
        ledger.append(_record())
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"schema": 1, "run_id": "torn')
        with pytest.warns(UserWarning, match="torn final ledger line"):
            records = ledger.read()
        assert len(records) == 1

    def test_newer_schema_records_skipped_with_warning(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        ledger = Ledger(str(path))
        future = _record().to_json()
        future["schema"] = LEDGER_SCHEMA_VERSION + 1
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(future) + "\n")
        ledger.append(_record())
        with pytest.warns(UserWarning, match="newer schema"):
            records = ledger.read()
        assert len(records) == 1
        assert records[0].schema == LEDGER_SCHEMA_VERSION


class TestCompare:
    def test_identical_runs_are_ok(self):
        report = compare(_record(), _record())
        assert report.ok
        assert not report.regressions

    def test_detects_2x_slowdown(self):
        baseline = _record()
        current = _record(rows=_scaled(ROWS, "fig19", 2.0))
        report = compare(baseline, current, tolerance=0.2)
        assert not report.ok
        (delta,) = report.regressions
        assert delta.experiment == "fig19"
        assert abs(delta.ratio - 2.0) < 1e-9
        assert "REGRESSED" in report.render()

    def test_tolerance_absorbs_small_drift(self):
        current = _record(rows=_scaled(ROWS, "fig19", 1.1))
        assert compare(_record(), current, tolerance=0.2).ok

    def test_fast_experiments_are_noise_immune(self):
        fast = [dict(ROWS[0], seconds=0.004)]
        slow = [dict(ROWS[0], seconds=0.012)]  # 3x, but under the floor
        assert compare(_record(rows=fast), _record(rows=slow)).ok

    def test_status_downgrade_is_always_a_regression(self):
        bad = [dict(ROWS[0], status="timeout")]
        report = compare(_record(rows=[ROWS[0]]), _record(rows=bad))
        assert not report.ok
        assert report.regressions[0].status_worsened

    def test_missing_experiment_fails_new_is_informational(self):
        base_only = _record(rows=[ROWS[0], ROWS[1]])
        cur_only = _record(rows=[ROWS[0], ROWS[2]])
        report = compare(base_only, cur_only)
        assert report.missing == ["table5"]
        assert report.new == ["lint"]
        assert not report.ok

    def test_to_json_round_trips(self):
        report = compare(_record(), _record(rows=_scaled(ROWS, "fig19", 2.0)))
        doc = json.loads(json.dumps(report.to_json()))
        assert doc["ok"] is False
        assert any(d["regressed"] for d in doc["deltas"])


class TestCliCompare:
    """Acceptance: `repro-brs obs compare` flags an injected 2x slowdown."""

    def _write_ledger(self, path, rows):
        with open(path.parent / "status.json", "w") as fh:
            json.dump(rows, fh)
        Ledger(str(path)).append(record_from_status(rows))

    def test_cli_detects_injected_slowdown(self, tmp_path, capsys):
        base = tmp_path / "base.jsonl"
        cur = tmp_path / "cur.jsonl"
        self._write_ledger(base, ROWS)
        self._write_ledger(cur, _scaled(ROWS, "fig19", 2.0))
        rc = cli_main([
            "obs", "compare", "--baseline", str(base), "--current", str(cur),
            "--tolerance", "0.2",
        ])
        assert rc == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_cli_warn_only_exits_zero(self, tmp_path, capsys):
        base = tmp_path / "base.jsonl"
        cur = tmp_path / "cur.jsonl"
        self._write_ledger(base, ROWS)
        self._write_ledger(cur, _scaled(ROWS, "fig19", 2.0))
        json_out = tmp_path / "report.json"
        rc = cli_main([
            "obs", "compare", "--baseline", str(base), "--current", str(cur),
            "--warn-only", "--json-out", str(json_out),
        ])
        assert rc == 0
        assert json.loads(json_out.read_text())["ok"] is False

    def test_cli_record_and_report(self, tmp_path, capsys):
        status = tmp_path / "status.json"
        status.write_text(json.dumps(ROWS))
        ledger = tmp_path / "ledger.jsonl"
        assert cli_main([
            "obs", "record", "--status", str(status),
            "--ledger", str(ledger), "--label", "ci",
        ]) == 0
        assert cli_main(["obs", "report", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "ci" in out and "run_id" in out

    def test_cli_compare_missing_baseline_is_bad_input(self, tmp_path):
        cur = tmp_path / "cur.jsonl"
        self._write_ledger(cur, ROWS)
        rc = cli_main([
            "obs", "compare",
            "--baseline", str(tmp_path / "absent.jsonl"),
            "--current", str(cur),
        ])
        assert rc == 2  # EXIT_BAD_INPUT
