"""Cross-process trace propagation: TraceContext, graft, torn tails."""

import threading

import pytest

from repro.obs.trace import (
    NULL_TRACER,
    TraceContext,
    Tracer,
    read_trace,
    span_tree,
)


class TestTraceContextCodec:
    def test_round_trip_with_parent(self):
        ctx = TraceContext(trace_id="abc123", parent_span_id=42)
        assert ctx.to_header() == "abc123:42"
        assert TraceContext.from_header(ctx.to_header()) == ctx

    def test_round_trip_without_parent(self):
        ctx = TraceContext(trace_id="abc123")
        assert ctx.to_header() == "abc123"
        assert TraceContext.from_header("abc123") == ctx

    @pytest.mark.parametrize(
        "value",
        [None, "", "   ", ":", ":7", "abc:notanint", "abc:1:2", "a b:1"],
    )
    def test_malformed_headers_yield_none(self, value):
        assert TraceContext.from_header(value) is None

    def test_context_is_picklable(self):
        import pickle

        ctx = TraceContext(trace_id="deadbeef", parent_span_id=3)
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_tracer_context_reflects_open_span(self):
        events = []
        tracer = Tracer(events)
        assert tracer.context().parent_span_id is None
        with tracer.span("outer") as outer:
            ctx = tracer.context()
            assert ctx.trace_id == tracer.trace_id
            assert ctx.parent_span_id == outer.span_id
        assert tracer.context().parent_span_id is None

    def test_null_tracer_context_is_empty(self):
        assert NULL_TRACER.context() == TraceContext(trace_id="")


class TestGraft:
    def _worker_events(self):
        """Simulate a worker: buffered events from an independent tracer."""
        buffer = []
        worker = Tracer(buffer)
        with worker.span("worker.solve", shard=0):
            with worker.span("worker.inner"):
                worker.event("worker.note", hits=3)
        return buffer

    def test_remote_roots_reparent_under_wrapper(self):
        events = []
        tracer = Tracer(events)
        with tracer.span("dispatch") as dispatch:
            wrapper_id = tracer.graft(self._worker_events(), "parallel.shard")
        tree = span_tree(events)
        assert wrapper_id in tree[dispatch.span_id]
        # The remote root hangs off the wrapper, its child off the root.
        (remote_root,) = tree[wrapper_id]
        assert len(tree[remote_root]) == 1

    def test_remote_ids_are_remapped_into_local_space(self):
        events = []
        tracer = Tracer(events)
        tracer.graft(self._worker_events(), "parallel.shard")
        ids = [e["id"] for e in events if e.get("ev") == "enter"]
        assert len(ids) == len(set(ids))

    def test_point_events_keep_remapped_parents(self):
        events = []
        tracer = Tracer(events)
        tracer.graft(self._worker_events(), "parallel.shard")
        points = [e for e in events if e.get("ev") == "event"]
        span_ids = {e["id"] for e in events if e.get("ev") == "enter"}
        assert points and all(p["parent"] in span_ids for p in points)

    def test_timestamps_rebase_into_wrapper_interval(self):
        events = []
        tracer = Tracer(events)
        tracer.graft(self._worker_events(), "parallel.shard")
        enters = [e for e in events if e.get("ev") == "enter"]
        exits = [e for e in events if e.get("ev") == "exit"]
        wrapper_enter = enters[0]
        wrapper_exit = exits[-1]
        for e in enters[1:] + exits[:-1]:
            assert wrapper_enter["ts"] <= e["ts"] <= wrapper_exit["ts"]

    def test_empty_buffer_emits_instant_wrapper_returns_none(self):
        events = []
        tracer = Tracer(events)
        assert tracer.graft([], "parallel.shard") is None
        enter = [e for e in events if e.get("ev") == "enter"][-1]
        exit_ = [e for e in events if e.get("ev") == "exit"][-1]
        assert enter["span"] == exit_["span"] == "parallel.shard"
        assert exit_["dur"] == 0.0

    def test_graft_without_meta_still_merges(self):
        buffer = self._worker_events()
        headless = [e for e in buffer if e.get("ev") != "meta"]
        events = []
        tracer = Tracer(events)
        assert tracer.graft(headless, "parallel.shard") is not None
        ids = [e["id"] for e in events if e.get("ev") == "enter"]
        assert len(ids) == len(set(ids))

    def test_null_tracer_graft_discards(self):
        assert NULL_TRACER.graft(self._worker_events(), "x") is None


class TestThreadSafety:
    def test_concurrent_spans_get_unique_ids_and_local_nesting(self):
        events = []
        tracer = Tracer(events)

        def work(tag):
            for _ in range(50):
                with tracer.span(f"outer.{tag}"):
                    with tracer.span(f"inner.{tag}"):
                        pass

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        enters = [e for e in events if e.get("ev") == "enter"]
        ids = [e["id"] for e in enters]
        assert len(ids) == len(set(ids)) == 400
        # Every inner span's parent is an outer span of the SAME thread tag.
        name_of = {e["id"]: e["span"] for e in enters}
        for e in enters:
            if e["span"].startswith("inner."):
                tag = e["span"].split(".")[1]
                assert name_of[e["parent"]] == f"outer.{tag}"


class TestTornTail:
    def test_torn_final_line_skipped_with_warning(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        events = []
        tracer = Tracer(events)
        with tracer.span("solve"):
            pass
        import json

        lines = [json.dumps(e) for e in events]
        path.write_text("\n".join(lines) + '\n{"ev": "enter", "spa')
        with pytest.warns(UserWarning, match="torn final trace line"):
            recovered = read_trace(str(path))
        assert len(recovered) == len(events)

    def test_mid_file_damage_still_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"ev": "meta"}\n{broken\n{"ev": "enter", "id": 0}\n')
        with pytest.raises(Exception):
            read_trace(str(path))
