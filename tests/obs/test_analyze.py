"""Span-breakdown tests: reconstruction, self-time, categories."""

from repro.obs.analyze import build_spans, render_breakdown, span_breakdown
from repro.obs.trace import Tracer


def _manual_events():
    """A hand-built trace with exact timestamps (seconds).

    root[0..10] -> io_child[1..4, category=io] -> leaf[2..3]
                -> compute_child[5..9, category=compute]
    """
    return [
        {"ev": "meta", "version": 1, "t0_epoch": 0.0, "t0_perf": 0.0},
        {"ev": "enter", "span": "root", "id": 0, "parent": None, "ts": 0.0},
        {"ev": "enter", "span": "io_child", "id": 1, "parent": 0,
         "ts": 1.0, "category": "io"},
        {"ev": "enter", "span": "leaf", "id": 2, "parent": 1, "ts": 2.0},
        {"ev": "exit", "span": "leaf", "id": 2, "ts": 3.0, "dur": 1.0},
        {"ev": "exit", "span": "io_child", "id": 1, "ts": 4.0, "dur": 3.0},
        {"ev": "enter", "span": "compute_child", "id": 3, "parent": 0,
         "ts": 5.0, "category": "compute"},
        {"ev": "exit", "span": "compute_child", "id": 3, "ts": 9.0,
         "dur": 4.0},
        {"ev": "exit", "span": "root", "id": 0, "ts": 10.0, "dur": 10.0},
    ]


class TestBuildSpans:
    def test_forest_structure(self):
        (root,) = build_spans(_manual_events())
        assert root.name == "root"
        assert sorted(c.name for c in root.children) == [
            "compute_child", "io_child",
        ]

    def test_missing_exit_keeps_span_open_with_zero_duration(self):
        events = [e for e in _manual_events() if not (
            e.get("ev") == "exit" and e.get("id") == 0)]
        (root,) = build_spans(events)
        assert root.end is None
        assert root.duration == 0.0

    def test_orphan_parent_becomes_root(self):
        events = [
            {"ev": "enter", "span": "lost", "id": 7, "parent": 99, "ts": 0.0},
            {"ev": "exit", "span": "lost", "id": 7, "ts": 1.0, "dur": 1.0},
        ]
        (root,) = build_spans(events)
        assert root.name == "lost"

    def test_attrs_exclude_reserved_keys(self):
        (root,) = build_spans(_manual_events())
        io_child = next(c for c in root.children if c.name == "io_child")
        assert io_child.attrs == {"category": "io"}


class TestSpanBreakdown:
    def test_totals_and_self_time(self):
        breakdown = span_breakdown(_manual_events())
        assert breakdown["total_seconds"] == 10.0
        assert breakdown["span_count"] == 4
        phases = breakdown["phases"]
        # root covers 10s but 7s belong to its children.
        assert phases["root"]["self_seconds"] == 3.0
        assert phases["io_child"]["self_seconds"] == 2.0
        assert phases["leaf"]["self_seconds"] == 1.0

    def test_categories_partition_total(self):
        categories = span_breakdown(_manual_events())["categories"]
        # leaf inherits io from its parent; root is uncategorized.
        assert categories == {"other": 3.0, "io": 3.0, "compute": 4.0}
        assert sum(categories.values()) == 10.0

    def test_repeated_phase_aggregates(self):
        events = []
        tracer = Tracer(events)
        for _ in range(3):
            with tracer.span("slicebrs.slab"):
                pass
        row = span_breakdown(events)["phases"]["slicebrs.slab"]
        assert row["count"] == 3
        assert row["max_seconds"] <= row["total_seconds"]

    def test_empty_trace(self):
        breakdown = span_breakdown([])
        assert breakdown["total_seconds"] == 0.0
        assert breakdown["span_count"] == 0


class TestRenderBreakdown:
    def test_renders_phases_and_categories(self):
        text = render_breakdown(span_breakdown(_manual_events()))
        assert "total 10.0000s across 4 spans" in text
        assert "io_child" in text
        assert "category io" in text

    def test_phases_sorted_by_self_time(self):
        text = render_breakdown(span_breakdown(_manual_events()))
        lines = [l.split()[0] for l in text.splitlines()
                 if l and not l.startswith(("total", "phase", "category"))]
        assert lines.index("root") < lines.index("leaf")
