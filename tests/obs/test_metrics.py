"""Unit tests for the metrics registry, scoping, and null fast path."""

import json
import threading

import pytest

from repro.obs.metrics import (
    NULL_METRIC,
    NULL_REGISTRY,
    MetricsRegistry,
    active_registry,
    counter_delta,
    metrics_scope,
)


class TestCounter:
    def test_inc_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_negative_inc_rejected(self):
        counter = MetricsRegistry().counter("c_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("c_total") is registry.counter("c_total")

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")


class TestGauge:
    def test_set_and_inc(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value == 7


class TestHistogram:
    def test_observations_land_in_buckets(self):
        hist = MetricsRegistry().histogram("h_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        assert hist.bucket_counts == [1, 1, 1]
        assert hist.count == 3
        assert hist.sum == pytest.approx(5.55)


class TestSnapshot:
    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h_seconds", buckets=(0.1,)).observe(0.01)
        snap = registry.snapshot()
        parsed = json.loads(json.dumps(snap))
        assert parsed["c_total"] == {"type": "counter", "value": 2}
        assert parsed["g"] == {"type": "gauge", "value": 1.5}
        assert parsed["h_seconds"]["count"] == 1
        assert parsed["h_seconds"]["buckets"]["+Inf"] == 0

    def test_reset_clears(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc()
        registry.reset()
        assert registry.snapshot() == {}

    def test_counter_delta_ignores_non_counters(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(3)
        registry.gauge("g").set(9)
        before = registry.snapshot()
        registry.counter("c_total").inc(2)
        registry.counter("new_total").inc(1)
        registry.gauge("g").set(1)
        delta = counter_delta(before, registry.snapshot())
        assert delta == {"c_total": 2, "new_total": 1}


class TestAmbientScope:
    def test_default_is_null_registry(self):
        assert active_registry() is NULL_REGISTRY
        assert not active_registry().enabled

    def test_scope_installs_and_restores(self):
        registry = MetricsRegistry()
        with metrics_scope(registry):
            assert active_registry() is registry
            inner = MetricsRegistry()
            with metrics_scope(inner):
                assert active_registry() is inner
            assert active_registry() is registry
        assert active_registry() is NULL_REGISTRY

    def test_none_disables_for_block(self):
        with metrics_scope(MetricsRegistry()):
            with metrics_scope(None):
                assert active_registry() is NULL_REGISTRY

    def test_scope_is_thread_local(self):
        registry = MetricsRegistry()
        seen = []

        def probe():
            seen.append(active_registry())

        with metrics_scope(registry):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen == [NULL_REGISTRY]


class TestNullRegistry:
    def test_lookups_return_shared_null_metric(self):
        assert NULL_REGISTRY.counter("a") is NULL_METRIC
        assert NULL_REGISTRY.gauge("b") is NULL_METRIC
        assert NULL_REGISTRY.histogram("c") is NULL_METRIC

    def test_null_metric_absorbs_everything(self):
        NULL_METRIC.inc(5)
        NULL_METRIC.set(3)
        NULL_METRIC.observe(1.0)
        assert NULL_METRIC.value == 0.0
        assert NULL_REGISTRY.snapshot() == {}
