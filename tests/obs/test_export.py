"""Exporter tests: Prometheus text exposition and file writing."""

import json
import pathlib

from repro.obs.export import to_prometheus_text, write_metrics
from repro.obs.metrics import MetricsRegistry

DOC_PATH = (
    pathlib.Path(__file__).resolve().parents[2] / "docs" / "observability.md"
)


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("brs_candidates_total", help="candidates scored").inc(7)
    registry.gauge("brs_cover_last_size", help="cover size").set(12)
    hist = registry.histogram("brs_solve_seconds", help="t", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(2.0)
    return registry


class TestPrometheusText:
    def test_counter_and_gauge_samples(self):
        text = to_prometheus_text(_sample_registry())
        assert "# HELP brs_candidates_total candidates scored" in text
        assert "# TYPE brs_candidates_total counter" in text
        assert "brs_candidates_total 7" in text
        assert "# TYPE brs_cover_last_size gauge" in text
        assert "brs_cover_last_size 12" in text

    def test_histogram_buckets_are_cumulative(self):
        text = to_prometheus_text(_sample_registry())
        assert 'brs_solve_seconds_bucket{le="0.1"} 1' in text
        assert 'brs_solve_seconds_bucket{le="1"} 2' in text
        assert 'brs_solve_seconds_bucket{le="+Inf"} 3' in text
        assert "brs_solve_seconds_sum 2.55" in text
        assert "brs_solve_seconds_count 3" in text

    def test_exposition_parses_line_by_line(self):
        """Every non-comment line is `name[{labels}] value`."""
        for line in to_prometheus_text(_sample_registry()).strip().splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # must parse
            assert name_part[0].isalpha()

    def test_empty_registry_renders_empty(self):
        assert to_prometheus_text(MetricsRegistry()) == ""


class TestHelpEscaping:
    def test_newline_in_help_stays_one_line(self):
        registry = MetricsRegistry()
        registry.counter(
            "brs_escape_total", help="first line\nsecond line"
        ).inc()
        text = to_prometheus_text(registry)
        assert "# HELP brs_escape_total first line\\nsecond line" in text
        # A raw newline in a HELP line would corrupt the exposition: every
        # line must still be a comment or a `name value` sample.
        for line in text.strip().splitlines():
            assert line.startswith("#") or line.startswith("brs_")

    def test_backslash_in_help_is_doubled(self):
        registry = MetricsRegistry()
        registry.gauge("brs_path_depth", help="depth of C:\\data").set(1)
        text = to_prometheus_text(registry)
        assert "# HELP brs_path_depth depth of C:\\\\data" in text

    def test_sample_lines_unaffected(self):
        registry = MetricsRegistry()
        registry.counter("brs_escape_total", help="a\\b\nc").inc(3)
        assert "brs_escape_total 3" in to_prometheus_text(registry)


class TestBucketCumulativity:
    def test_bucket_counts_never_decrease(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "brs_cumulative_seconds", buckets=(0.01, 0.1, 1.0, 10.0)
        )
        for value in (0.005, 0.005, 0.05, 0.5, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        counts = []
        for line in to_prometheus_text(registry).splitlines():
            if line.startswith("brs_cumulative_seconds_bucket"):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts)
        assert len(counts) == 5  # 4 bounds + +Inf
        assert counts[-1] == hist.count

    def test_inf_bucket_equals_count_with_no_overflow(self):
        registry = MetricsRegistry()
        hist = registry.histogram("brs_inner_seconds", buckets=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(1.5)
        text = to_prometheus_text(registry)
        assert 'brs_inner_seconds_bucket{le="+Inf"} 2' in text
        assert "brs_inner_seconds_count 2" in text


class TestMetricNamesPassLint:
    """Round-trip: every name a live registry exposes passes BRS008.

    The lint rule keeps literal names snake_case and documented in
    docs/observability.md; this asserts the *runtime* names published by
    the SLO tracker and the serve gauges meet the same bar, so the
    catalogue and the exposition can never drift apart.
    """

    def test_slo_and_serve_names_are_documented(self):
        from repro.analysis.rules.metric_rules import (
            _SNAKE_CASE_RE,
            parse_documented_names,
        )
        from repro.obs.slo import SLOTracker, objective_for

        registry = MetricsRegistry()
        tracker = SLOTracker(objective_for("interactive"))
        tracker.record("ok", 0.01)
        tracker.record("rejected", 0.0)
        tracker.publish(registry)
        registry.counter(
            "brs_serve_requests_total", help="requests accepted"
        ).inc()
        registry.gauge("brs_serve_inflight", help="open queries").set(0.0)
        registry.gauge("brs_serve_queue_depth", help="queue depth").set(0.0)
        documented = parse_documented_names(DOC_PATH.read_text())
        for name in registry.metrics():
            assert _SNAKE_CASE_RE.match(name), name
            assert name in documented, f"{name} missing from observability.md"

    def test_exposition_names_derive_from_registry_names(self):
        """Sample names are the registry name plus a histogram suffix."""
        registry = _sample_registry()
        allowed = set(registry.metrics())
        suffixes = ("_bucket", "_sum", "_count")
        for line in to_prometheus_text(registry).strip().splitlines():
            if line.startswith("#"):
                continue
            name = line.split("{", 1)[0].split(" ", 1)[0]
            base_ok = name in allowed or any(
                name.endswith(sfx) and name[: -len(sfx)] in allowed
                for sfx in suffixes
            )
            assert base_ok, name


class TestWriteMetrics:
    def test_prom_extension_gets_exposition(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_metrics(_sample_registry(), path)
        assert "# TYPE brs_candidates_total counter" in path.read_text()

    def test_json_extension_gets_snapshot(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics(_sample_registry(), path)
        data = json.loads(path.read_text())
        assert data["brs_candidates_total"] == {"type": "counter", "value": 7}
        assert data["brs_solve_seconds"]["count"] == 3
