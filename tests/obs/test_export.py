"""Exporter tests: Prometheus text exposition and file writing."""

import json

from repro.obs.export import to_prometheus_text, write_metrics
from repro.obs.metrics import MetricsRegistry


def _sample_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("brs_candidates_total", help="candidates scored").inc(7)
    registry.gauge("brs_cover_last_size", help="cover size").set(12)
    hist = registry.histogram("brs_solve_seconds", help="t", buckets=(0.1, 1.0))
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(2.0)
    return registry


class TestPrometheusText:
    def test_counter_and_gauge_samples(self):
        text = to_prometheus_text(_sample_registry())
        assert "# HELP brs_candidates_total candidates scored" in text
        assert "# TYPE brs_candidates_total counter" in text
        assert "brs_candidates_total 7" in text
        assert "# TYPE brs_cover_last_size gauge" in text
        assert "brs_cover_last_size 12" in text

    def test_histogram_buckets_are_cumulative(self):
        text = to_prometheus_text(_sample_registry())
        assert 'brs_solve_seconds_bucket{le="0.1"} 1' in text
        assert 'brs_solve_seconds_bucket{le="1"} 2' in text
        assert 'brs_solve_seconds_bucket{le="+Inf"} 3' in text
        assert "brs_solve_seconds_sum 2.55" in text
        assert "brs_solve_seconds_count 3" in text

    def test_exposition_parses_line_by_line(self):
        """Every non-comment line is `name[{labels}] value`."""
        for line in to_prometheus_text(_sample_registry()).strip().splitlines():
            if line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            float(value)  # must parse
            assert name_part[0].isalpha()

    def test_empty_registry_renders_empty(self):
        assert to_prometheus_text(MetricsRegistry()) == ""


class TestWriteMetrics:
    def test_prom_extension_gets_exposition(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_metrics(_sample_registry(), path)
        assert "# TYPE brs_candidates_total counter" in path.read_text()

    def test_json_extension_gets_snapshot(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics(_sample_registry(), path)
        data = json.loads(path.read_text())
        assert data["brs_candidates_total"] == {"type": "counter", "value": 7}
        assert data["brs_solve_seconds"]["count"] == 3
