"""profile_scope: report lands on the chosen stream, stderr by default."""

import io

from repro.obs.profile import profile_scope


def _busy():
    return sum(i * i for i in range(2000))


class TestProfileScope:
    def test_report_written_to_stream(self):
        out = io.StringIO()
        with profile_scope(top_n=5, stream=out):
            _busy()
        report = out.getvalue()
        assert "function calls" in report
        assert "cumulative" in report

    def test_report_written_even_when_block_raises(self):
        out = io.StringIO()
        try:
            with profile_scope(stream=out):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert "function calls" in out.getvalue()

    def test_yields_live_profiler(self, tmp_path):
        out = io.StringIO()
        with profile_scope(stream=out) as profiler:
            _busy()
        dump = tmp_path / "raw.pstats"
        profiler.dump_stats(str(dump))
        assert dump.stat().st_size > 0
