"""Unit and integration tests for span tracing and the JSONL writer."""

import json

from repro.obs.bench import make_instance
from repro.obs.trace import (
    NULL_SPAN,
    NULL_TRACER,
    JsonlTraceWriter,
    Tracer,
    active_tracer,
    read_trace,
    span_tree,
    trace_scope,
)


class TestTracer:
    def test_meta_header_emitted_first(self):
        events = []
        Tracer(events)
        assert events[0]["ev"] == "meta"
        assert events[0]["version"] == 1

    def test_span_enter_exit_pair(self):
        events = []
        tracer = Tracer(events)
        with tracer.span("work", n=3):
            pass
        enter, exit_ = events[1], events[2]
        assert enter["ev"] == "enter" and enter["span"] == "work"
        assert enter["n"] == 3 and enter["parent"] is None
        assert exit_["ev"] == "exit" and exit_["id"] == enter["id"]
        assert exit_["dur"] >= 0

    def test_nesting_sets_parent_and_monotonic_timestamps(self):
        events = []
        tracer = Tracer(events)
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("tick", detail=1)
        enters = {e["span"]: e for e in events if e["ev"] == "enter"}
        exits = {e["span"]: e for e in events if e["ev"] == "exit"}
        point = next(e for e in events if e["ev"] == "event")
        assert enters["inner"]["parent"] == enters["outer"]["id"]
        assert point["parent"] == enters["inner"]["id"]
        assert (
            enters["outer"]["ts"]
            <= enters["inner"]["ts"]
            <= point["ts"]
            <= exits["inner"]["ts"]
            <= exits["outer"]["ts"]
        )

    def test_exit_emitted_when_span_body_raises(self):
        events = []
        tracer = Tracer(events)
        try:
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [e["ev"] for e in events[1:]] == ["enter", "exit"]

    def test_annotate_emits_point_event(self):
        events = []
        tracer = Tracer(events)
        with tracer.span("round") as span:
            span.annotate(score=7)
        note = next(e for e in events if e.get("ev") == "event")
        assert note["name"] == "round.note" and note["score"] == 7


class TestNullTracer:
    def test_span_returns_shared_null_span(self):
        assert NULL_TRACER.span("anything", k=1) is NULL_SPAN
        with NULL_TRACER.span("x") as span:
            span.annotate(ignored=True)
        NULL_TRACER.event("ignored")

    def test_ambient_default_is_null(self):
        assert active_tracer() is NULL_TRACER

    def test_trace_scope_installs_and_restores(self):
        tracer = Tracer([])
        with trace_scope(tracer):
            assert active_tracer() is tracer
        assert active_tracer() is NULL_TRACER


class TestJsonlRoundTrip:
    def test_write_and_read_trace(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with JsonlTraceWriter(path, flush_every=1) as writer:
            tracer = Tracer(writer)
            with tracer.span("solve"):
                tracer.event("checkpoint")
        events = read_trace(path)
        assert [e["ev"] for e in events] == ["meta", "enter", "event", "exit"]
        # Every line is standalone JSON.
        with open(path) as stream:
            for line in stream:
                json.loads(line)

    def test_span_tree_groups_children(self):
        events = []
        tracer = Tracer(events)
        with tracer.span("a"):
            with tracer.span("b"):
                pass
            with tracer.span("c"):
                pass
        tree = span_tree(events)
        roots = tree[None]
        assert len(roots) == 1
        assert len(tree[roots[0]]) == 2


class TestSliceBRSTraceReplay:
    """Acceptance: a recorded SliceBRS trace replays slice -> slab ->
    SearchMR with monotonically nested span timestamps."""

    def test_phase_sequence_and_nesting(self, tmp_path):
        from repro.core.slicebrs import SliceBRS

        points, f, a, b = make_instance(n_objects=120, seed=3)
        path = str(tmp_path / "slice.jsonl")
        with JsonlTraceWriter(path, flush_every=1) as writer:
            with trace_scope(Tracer(writer)):
                SliceBRS().solve(points, f, a, b)

        events = read_trace(path)
        enters = {e["id"]: e for e in events if e["ev"] == "enter"}
        exits = {e["id"]: e for e in events if e["ev"] == "exit"}
        by_name = {}
        for e in enters.values():
            by_name.setdefault(e["span"], []).append(e)

        # The phase hierarchy of Section 4: the solve contains slice scans,
        # slice scans contain ScanSlab sweeps, and slab searches contain
        # SearchMR sweeps.
        assert len(by_name["slicebrs.solve"]) == 1
        solve_id = by_name["slicebrs.solve"][0]["id"]
        assert by_name["slicebrs.slice"], "no slice spans recorded"
        assert by_name["sweep.scan_slab"], "no ScanSlab spans recorded"
        assert by_name["slicebrs.slab"], "no slab spans recorded"
        assert by_name["sweep.search_mr"], "no SearchMR spans recorded"
        for e in by_name["slicebrs.slice"] + by_name["slicebrs.slab"]:
            assert e["parent"] == solve_id
        slice_ids = {e["id"] for e in by_name["slicebrs.slice"]}
        for e in by_name["sweep.scan_slab"]:
            assert e["parent"] in slice_ids
        slab_ids = {e["id"] for e in by_name["slicebrs.slab"]}
        for e in by_name["sweep.search_mr"]:
            assert e["parent"] in slab_ids

        # Every span is balanced and nested monotonically inside its parent.
        assert set(enters) == set(exits)
        for span_id, enter in enters.items():
            exit_ = exits[span_id]
            assert enter["ts"] <= exit_["ts"]
            parent = enter["parent"]
            if parent is not None:
                assert enters[parent]["ts"] <= enter["ts"]
                assert exit_["ts"] <= exits[parent]["ts"]
