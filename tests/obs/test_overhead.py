"""The disabled-instrumentation overhead gate (acceptance: < 5%)."""

from repro.obs.bench import (
    OVERHEAD_BUDGET,
    make_instance,
    measure_disabled_overhead,
    null_op_cost,
)


class TestPrimitives:
    def test_null_op_cost_is_tiny(self):
        # A disabled span + counter bump should cost well under a
        # microsecond even on slow CI machines.
        assert null_op_cost(iters=20_000) < 5e-6

    def test_make_instance_is_deterministic(self):
        p1, _, _, _ = make_instance(n_objects=30, seed=7)
        p2, _, _, _ = make_instance(n_objects=30, seed=7)
        assert [(p.x, p.y) for p in p1] == [(p.x, p.y) for p in p2]


class TestOverheadGate:
    def test_disabled_overhead_under_budget(self):
        report = measure_disabled_overhead(n_objects=200, seed=0, repeats=3)
        assert report["spans"] > 0, "census found no spans — instrumentation gone?"
        assert report["metrics"] > 0, "census found no metrics"
        assert report["overhead_fraction"] < OVERHEAD_BUDGET, (
            f"estimated disabled overhead {report['overhead_fraction']:.2%} "
            f"exceeds the {OVERHEAD_BUDGET:.0%} budget ({report})"
        )
