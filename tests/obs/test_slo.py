"""SLO tracker tests: percentiles, burn rate, shedding, verdicts."""

import threading

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    SLObjective,
    SLOTracker,
    objective_for,
    percentile,
)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_sample(self):
        assert percentile([3.0], 0.99) == 3.0

    def test_median_interpolates(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.5

    def test_extremes(self):
        samples = [5.0, 1.0, 3.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 5.0

    def test_order_invariant(self):
        assert percentile([9.0, 1.0, 5.0], 0.5) == percentile(
            [1.0, 5.0, 9.0], 0.5
        )


class TestSLOTracker:
    def _objective(self, **kw):
        base = dict(
            tier="test", p50_seconds=0.1, p99_seconds=1.0,
            availability=0.9, max_shed_ratio=0.2,
        )
        base.update(kw)
        return SLObjective(**base)

    def test_empty_window_is_healthy(self):
        snap = SLOTracker(self._objective()).snapshot()
        assert snap["healthy"]
        assert snap["window_requests"] == 0
        assert snap["error_budget_burn"] == 0.0

    def test_latency_percentiles_only_cover_served(self):
        tracker = SLOTracker(self._objective())
        tracker.record("ok", 0.01)
        tracker.record("degraded", 0.03)
        tracker.record("error", 99.0)  # error latency must not pollute p99
        tracker.record("rejected", 0.0)
        snap = tracker.snapshot()
        assert snap["p99_seconds"] < 0.05

    def test_p50_breach_flips_verdict(self):
        tracker = SLOTracker(self._objective(p50_seconds=0.01))
        for _ in range(10):
            tracker.record("ok", 0.5)
        snap = tracker.snapshot()
        assert not snap["verdicts"]["p50_ok"]
        assert not snap["healthy"]

    def test_error_budget_burn(self):
        # availability 0.9 -> 10% budget; 20% errors -> burn 2.0
        tracker = SLOTracker(self._objective(availability=0.9))
        for _ in range(8):
            tracker.record("ok", 0.01)
        for _ in range(2):
            tracker.record("error", 0.01)
        snap = tracker.snapshot()
        assert abs(snap["error_budget_burn"] - 2.0) < 1e-9
        assert not snap["verdicts"]["availability_ok"]

    def test_zero_budget_burn_is_window_sized_and_json_safe(self):
        import json

        tracker = SLOTracker(self._objective(availability=1.0))
        tracker.record("ok", 0.01)
        tracker.record("error", 0.01)
        snap = tracker.snapshot()
        assert snap["error_budget_burn"] == 2.0  # total requests, not inf
        json.dumps(snap)  # must serialize

    def test_rejections_count_as_shed_not_unavailability(self):
        tracker = SLOTracker(self._objective(max_shed_ratio=0.5))
        for _ in range(3):
            tracker.record("ok", 0.01)
        tracker.record("rejected", 0.0)
        snap = tracker.snapshot()
        assert snap["verdicts"]["availability_ok"]
        assert abs(snap["shed_ratio"] - 0.25) < 1e-9
        assert snap["verdicts"]["shed_ok"]

    def test_shed_ceiling_breach(self):
        tracker = SLOTracker(self._objective(max_shed_ratio=0.0))
        tracker.record("ok", 0.01)
        tracker.record("rejected", 0.0)
        assert not tracker.snapshot()["verdicts"]["shed_ok"]

    def test_unknown_outcome_treated_as_error(self):
        tracker = SLOTracker(self._objective())
        tracker.record("exploded", 0.01)
        assert tracker.snapshot()["counts"]["error"] == 1

    def test_window_slides(self):
        tracker = SLOTracker(self._objective(), window=4)
        for _ in range(4):
            tracker.record("error", 0.01)
        for _ in range(4):
            tracker.record("ok", 0.01)
        snap = tracker.snapshot()
        assert snap["counts"]["error"] == 0
        assert snap["healthy"]

    def test_publish_sets_gauges(self):
        registry = MetricsRegistry()
        tracker = SLOTracker(self._objective())
        tracker.record("ok", 0.02)
        snap = tracker.publish(registry)
        metrics = registry.metrics()
        assert metrics["brs_slo_p50_seconds"].value == snap["p50_seconds"]
        assert metrics["brs_slo_healthy"].value == 1.0
        assert metrics["brs_slo_window_requests"].value == 1.0

    def test_concurrent_records(self):
        tracker = SLOTracker(self._objective(), window=4096)

        def work():
            for _ in range(500):
                tracker.record("ok", 0.01)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracker.snapshot()["window_requests"] == 2000


class TestObjectiveResolution:
    def test_known_tiers(self):
        assert objective_for("batch") is DEFAULT_OBJECTIVES["batch"]
        assert (
            objective_for("interactive") is DEFAULT_OBJECTIVES["interactive"]
        )

    def test_unknown_and_none_default_to_interactive(self):
        assert objective_for("nope") is DEFAULT_OBJECTIVES["interactive"]
        assert objective_for(None) is DEFAULT_OBJECTIVES["interactive"]
