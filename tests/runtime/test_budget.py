"""Budget semantics: limits, nesting, and the ambient scope."""

import math

import pytest

from repro.runtime.budget import (
    Budget,
    ambient_budget,
    budget_scope,
    effective_budget,
)
from repro.runtime.errors import BudgetExceededError, InvalidQueryError


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestLimits:
    def test_unlimited_never_expires(self):
        budget = Budget.unlimited()
        budget.charge(10_000)
        assert not budget.expired()
        assert budget.remaining_time() == math.inf
        assert budget.remaining_evals() == math.inf

    def test_deadline_expiry_uses_injected_clock(self):
        clock = FakeClock()
        budget = Budget(deadline=1.0, clock=clock)
        budget.check()
        assert not budget.expired()
        clock.advance(0.9)
        budget.check()  # still inside
        clock.advance(0.2)
        assert budget.expired()
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.check()
        assert excinfo.value.reason == "deadline"

    def test_eval_cap(self):
        budget = Budget(max_evals=3)
        budget.charge()
        budget.charge()
        with pytest.raises(BudgetExceededError) as excinfo:
            budget.charge()
        assert excinfo.value.reason == "max_evals"
        assert budget.evals == 3

    def test_charge_counts_batches(self):
        budget = Budget(max_evals=10)
        with pytest.raises(BudgetExceededError):
            budget.charge(10)

    def test_elapsed_tracks_clock(self):
        clock = FakeClock()
        budget = Budget(deadline=5.0, clock=clock)
        clock.advance(1.5)
        assert budget.elapsed() == pytest.approx(1.5)
        assert budget.remaining_time() == pytest.approx(3.5)

    def test_of_returns_none_when_both_unset(self):
        assert Budget.of() is None
        assert Budget.of(timeout=None, max_evals=None) is None

    def test_of_builds_budget_from_either_limit(self):
        assert Budget.of(timeout=1.0).deadline == 1.0
        assert Budget.of(max_evals=5).max_evals == 5

    @pytest.mark.parametrize("kwargs", [
        {"deadline": 0.0},
        {"deadline": -1.0},
        {"deadline": float("nan")},
        {"max_evals": 0},
        {"max_evals": -3},
    ])
    def test_rejects_non_positive_limits(self, kwargs):
        with pytest.raises(InvalidQueryError):
            Budget(**kwargs)


class TestSubBudgets:
    def test_child_charges_debit_parent(self):
        parent = Budget(max_evals=10)
        child = parent.sub(eval_fraction=0.5)
        child.charge(3)
        assert parent.evals == 3
        assert parent.remaining_evals() == 7

    def test_child_holds_fraction_of_remaining(self):
        parent = Budget(max_evals=10)
        parent.charge(4)
        child = parent.sub(eval_fraction=0.5)
        assert child.max_evals == 3  # ceil(6 * 0.5)

    def test_child_deadline_is_fraction_of_remaining_time(self):
        clock = FakeClock()
        parent = Budget(deadline=10.0, clock=clock)
        clock.advance(4.0)
        child = parent.sub(time_fraction=0.5)
        assert child.deadline == pytest.approx(3.0)

    def test_parent_expiry_caps_child(self):
        clock = FakeClock()
        parent = Budget(deadline=1.0, clock=clock)
        child = parent.sub()  # full remaining time
        clock.advance(2.0)
        assert child.expired()
        with pytest.raises(BudgetExceededError):
            child.check()

    def test_sequential_stages_cannot_jointly_overspend(self):
        parent = Budget(max_evals=10)
        first = parent.sub(eval_fraction=0.6)
        assert first.max_evals == 6
        first.charge(5)
        second = parent.sub(eval_fraction=1.0)
        assert second.max_evals == 5  # only what the first stage left over
        second.charge(4)
        with pytest.raises(BudgetExceededError):
            parent.sub().charge()

    def test_unlimited_parent_gives_unlimited_child(self):
        child = Budget.unlimited().sub(time_fraction=0.5, eval_fraction=0.5)
        assert child.deadline is None
        assert child.max_evals is None


class TestAmbientScope:
    def test_no_scope_by_default(self):
        assert ambient_budget() is None
        assert effective_budget(None) is None

    def test_scope_installs_and_restores(self):
        budget = Budget(max_evals=5)
        with budget_scope(budget):
            assert ambient_budget() is budget
            assert effective_budget(None) is budget
        assert ambient_budget() is None

    def test_explicit_budget_wins_over_ambient(self):
        ambient = Budget(max_evals=5)
        explicit = Budget(max_evals=7)
        with budget_scope(ambient):
            assert effective_budget(explicit) is explicit

    def test_scopes_nest_and_none_clears(self):
        outer = Budget(max_evals=5)
        with budget_scope(outer):
            with budget_scope(None):
                assert ambient_budget() is None
            assert ambient_budget() is outer
