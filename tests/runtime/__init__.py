"""Tests for the execution-budget / fault-injection runtime layer."""
