"""Fault injection and the defenses it exercises.

The acceptance contract: transient failures are retried with backoff and
the solve succeeds; persistent failures surface as EvaluationError naming
the offending object set; a stalling evaluator trips the deadline instead
of hanging the solver.
"""

import math

import pytest

from repro.core.brs import best_region
from repro.core.slicebrs import SliceBRS
from repro.functions.coverage import CoverageFunction
from repro.geometry.point import Point
from repro.runtime.budget import Budget
from repro.runtime.errors import BudgetExceededError, EvaluationError
from repro.runtime.faults import (
    FaultPlan,
    FaultyFunction,
    RetryingFunction,
)
from tests.helpers import random_instance


def small_instance():
    points = [Point(0.0, 0.0), Point(0.5, 0.2), Point(0.4, 0.6), Point(5.0, 5.0)]
    tags = [{"a"}, {"b"}, {"c"}, {"a", "b"}]
    return points, CoverageFunction(tags), 1.0, 1.0


class TestFaultPlan:
    def test_first_n_are_faulty(self):
        plan = FaultPlan(first=3)
        assert [plan.is_faulty(i) for i in range(5)] == [
            True, True, True, False, False,
        ]

    def test_every_is_one_based_periodic(self):
        plan = FaultPlan(every=3)
        assert [plan.is_faulty(i) for i in range(6)] == [
            False, False, True, False, False, True,
        ]

    def test_every_one_fails_always(self):
        plan = FaultPlan(every=1)
        assert all(plan.is_faulty(i) for i in range(10))

    def test_explicit_indices(self):
        plan = FaultPlan(indices=(1, 4))
        assert [plan.is_faulty(i) for i in range(5)] == [
            False, True, False, False, True,
        ]

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultPlan(mode="explode")


class TestFaultyFunction:
    def test_raise_mode_names_object_set(self):
        points, f, a, b = small_instance()
        faulty = FaultyFunction(f, FaultPlan(mode="raise", every=1))
        with pytest.raises(EvaluationError, match=r"object set: \[1, 2\]"):
            faulty.value([2, 1])

    def test_counter_shared_between_batch_and_incremental(self):
        points, f, a, b = small_instance()
        faulty = FaultyFunction(f, FaultPlan(mode="raise", indices=(1,)))
        assert faulty.value([0]) == f.value([0])  # eval #0: clean
        evaluator = faulty.evaluator()
        evaluator.push(0)
        with pytest.raises(EvaluationError):  # eval #1: faulty
            evaluator.value
        assert evaluator.value == f.value([0])  # eval #2: clean again
        assert faulty.n_evals == 3
        assert faulty.n_faults == 1

    def test_nan_mode_returns_nan(self):
        points, f, a, b = small_instance()
        faulty = FaultyFunction(f, FaultPlan(mode="nan", every=1))
        assert math.isnan(faulty.value([0, 1]))

    def test_stall_mode_sleeps_then_answers(self):
        points, f, a, b = small_instance()
        slept = []
        faulty = FaultyFunction(
            f,
            FaultPlan(mode="stall", every=1, stall_seconds=0.25),
            sleeper=slept.append,
        )
        assert faulty.value([0]) == f.value([0])
        assert slept == [0.25]


class TestRetryingFunction:
    def test_transient_fault_is_ridden_out_with_backoff(self):
        points, f, a, b = small_instance()
        delays = []
        faulty = FaultyFunction(f, FaultPlan(mode="raise", first=3))
        retrying = RetryingFunction(
            faulty, max_retries=5, backoff=0.01, sleeper=delays.append
        )
        assert retrying.value([0, 1]) == f.value([0, 1])
        assert retrying.n_retries == 3
        assert delays == [0.01, 0.02, 0.04]  # exponential backoff

    def test_persistent_fault_exhausts_retries(self):
        points, f, a, b = small_instance()
        faulty = FaultyFunction(f, FaultPlan(mode="raise", every=1))
        retrying = RetryingFunction(
            faulty, max_retries=2, backoff=0.0, sleeper=lambda _: None
        )
        with pytest.raises(EvaluationError):
            retrying.value([0])
        assert faulty.n_evals == 3  # initial attempt + 2 retries

    def test_incremental_reads_are_retried_too(self):
        points, f, a, b = small_instance()
        faulty = FaultyFunction(f, FaultPlan(mode="raise", indices=(0,)))
        retrying = RetryingFunction(
            faulty, max_retries=2, backoff=0.0, sleeper=lambda _: None
        )
        evaluator = retrying.evaluator()
        evaluator.push(0)
        assert evaluator.value == f.value([0])
        assert retrying.n_retries == 1

    def test_rejects_negative_policy(self):
        points, f, a, b = small_instance()
        with pytest.raises(ValueError):
            RetryingFunction(f, max_retries=-1)
        with pytest.raises(ValueError):
            RetryingFunction(f, backoff=-0.1)


class TestSolverUnderFaults:
    def test_transient_faults_do_not_change_the_answer(self):
        points, f, a, b = random_instance(seed=11)
        clean = SliceBRS().solve(points, f, a, b)
        faulty = FaultyFunction(f, FaultPlan(mode="raise", first=4))
        retrying = RetryingFunction(
            faulty, max_retries=6, backoff=0.0, sleeper=lambda _: None
        )
        result = SliceBRS().solve(points, retrying, a, b)
        assert result.score == clean.score
        assert result.status == "ok"
        assert retrying.n_retries >= 1

    def test_persistent_fault_surfaces_evaluation_error(self):
        points, f, a, b = small_instance()
        faulty = FaultyFunction(f, FaultPlan(mode="raise", every=1))
        with pytest.raises(EvaluationError, match="object set"):
            best_region(points, faulty, a, b)

    def test_nan_is_caught_not_silently_pruned(self):
        points, f, a, b = small_instance()
        faulty = FaultyFunction(f, FaultPlan(mode="nan", every=1))
        with pytest.raises(EvaluationError):
            SliceBRS().solve(points, faulty, a, b)

    def test_stalling_evaluator_trips_deadline_not_hang(self):
        points, f, a, b = random_instance(seed=3, max_objects=30)
        faulty = FaultyFunction(
            f, FaultPlan(mode="stall", every=1, stall_seconds=0.02)
        )
        result = SliceBRS().solve(
            points, faulty, a, b, budget=Budget(deadline=0.01)
        )
        assert result.status == "timeout"
        assert result.upper_bound is not None

    def test_session_retries_absorb_transient_faults(self):
        from repro.core.session import ExplorationSession

        points, f, a, b = random_instance(seed=7)
        clean = ExplorationSession(points, f).explore(a, b)
        faulty = FaultyFunction(f, FaultPlan(mode="raise", first=2))
        session = ExplorationSession(points, faulty, retries=4)
        result = session.explore(a, b)
        assert result.score == clean.score
