"""Anytime execution: deadlines yield degraded answers, never exceptions.

The headline acceptance check lives here: a 50 ms deadline on a
10,000-object synthetic instance returns a best-so-far region with status
"degraded" or "timeout" and a finite optimality gap.
"""

import math
import random

import pytest

from repro.core.brs import best_region
from repro.core.gridscan import coarse_grid_scan
from repro.core.session import ExplorationSession
from repro.core.slicebrs import SliceBRS
from repro.core.topk import topk_regions
from repro.functions.coverage import CoverageFunction
from repro.geometry.point import Point
from repro.runtime.budget import Budget, budget_scope
from repro.runtime.errors import InvalidQueryError
from tests.helpers import random_instance


def big_instance(n=10_000, seed=0):
    """A 10k-object synthetic diversity instance."""
    rng = random.Random(seed)
    points = [Point(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(n)]
    tags = [{rng.randrange(50)} for _ in range(n)]
    return points, CoverageFunction(tags)


class TestDeadlinePressure:
    def test_50ms_deadline_on_10k_objects_degrades_gracefully(self):
        points, f = big_instance()
        result = best_region(
            points, f, a=5.0, b=5.0, budget=Budget(deadline=0.05)
        )
        assert result.status in ("degraded", "timeout")
        assert result.upper_bound is not None
        assert math.isfinite(result.upper_bound)
        assert math.isfinite(result.gap)
        assert result.gap >= 0.0
        assert result.score >= 0.0
        # The answer is a real region with its true score.
        assert result.score == f.value(result.object_ids)

    def test_eval_cap_degrades_gracefully(self):
        points, f = big_instance(n=2_000)
        result = best_region(
            points, f, a=5.0, b=5.0, budget=Budget(max_evals=20)
        )
        assert result.status in ("degraded", "timeout")
        assert result.upper_bound is not None
        assert math.isfinite(result.gap)

    def test_no_budget_is_bit_identical_to_exact(self):
        points, f, a, b = random_instance(seed=5)
        bare = best_region(points, f, a, b)
        unlimited = best_region(points, f, a, b, budget=Budget.unlimited())
        assert bare.status == unlimited.status == "ok"
        assert bare.point == unlimited.point
        assert bare.score == unlimited.score
        assert bare.object_ids == unlimited.object_ids
        assert bare.upper_bound is None and unlimited.upper_bound is None

    def test_degrade_false_returns_raw_slicebrs_answer(self):
        points, f = big_instance(n=2_000)
        result = best_region(
            points, f, a=5.0, b=5.0,
            budget=Budget(max_evals=10), degrade=False,
        )
        assert result.status == "timeout"
        assert result.upper_bound is not None

    def test_ambient_budget_is_picked_up(self):
        points, f = big_instance(n=2_000)
        with budget_scope(Budget(max_evals=20)):
            result = best_region(points, f, a=5.0, b=5.0)
        assert result.status in ("degraded", "timeout")


class TestGridScan:
    def test_completes_without_budget(self):
        points, f, a, b = random_instance(seed=9)
        result = coarse_grid_scan(points, f, a, b)
        assert result.status == "degraded"
        assert result.upper_bound is not None
        assert result.score <= result.upper_bound

    def test_timeout_mid_scan(self):
        points, f = big_instance(n=3_000)
        result = coarse_grid_scan(
            points, f, 5.0, 5.0, budget=Budget(max_evals=3)
        )
        assert result.status == "timeout"
        assert result.score == f.value(result.object_ids)

    def test_score_is_always_real(self):
        points, f, a, b = random_instance(seed=21)
        result = coarse_grid_scan(points, f, a, b, initial_best=1e9)
        # Nothing beats an absurd incumbent: the fallback answer still
        # reports its own true score, not the incumbent.
        assert result.score == f.value(result.object_ids)


class TestTopkUnderBudget:
    def test_budget_shared_across_rounds(self):
        points, f = big_instance(n=2_000)
        results = topk_regions(
            points, f, 5.0, 5.0, k=3, budget=Budget(max_evals=15)
        )
        assert 1 <= len(results) <= 3
        assert results[-1].status == "timeout"
        for result in results[:-1]:
            assert result.status == "ok"

    def test_no_budget_unchanged(self):
        points, f, a, b = random_instance(seed=13)
        results = topk_regions(points, f, a, b, k=2)
        assert all(r.status == "ok" for r in results)


class TestSessionLadder:
    def test_session_deadline_never_raises(self):
        points, f = big_instance(n=5_000)
        session = ExplorationSession(points, f, deadline=0.05)
        result = session.explore(5.0, 5.0)
        assert result.status in ("ok", "degraded", "timeout")
        confirmed = session.confirm()
        assert confirmed.status in ("ok", "degraded", "timeout")
        assert len(session.history) == 2

    def test_confirm_records_fallback_method(self):
        points, f = big_instance(n=5_000)
        session = ExplorationSession(points, f, max_evals=10)
        session.explore(5.0, 5.0)
        assert session.last.method in ("cover", "grid")

    def test_generous_budget_stays_exact(self):
        points, f, a, b = random_instance(seed=17)
        bare = ExplorationSession(points, f).confirm(a, b)
        budgeted = ExplorationSession(points, f, deadline=300.0).confirm(a, b)
        assert budgeted.status == "ok"
        assert budgeted.score == bare.score

    def test_empty_session_rejected(self):
        with pytest.raises(InvalidQueryError):
            ExplorationSession([], CoverageFunction([]))


class TestSliceBRSAnytime:
    def test_timeout_result_is_sound(self):
        points, f = big_instance(n=2_000)
        result = SliceBRS().solve(
            points, f, 5.0, 5.0, budget=Budget(max_evals=5)
        )
        assert result.status == "timeout"
        assert result.upper_bound >= result.score

    def test_statuses_are_valid(self):
        from repro.core.result import RESULT_STATUSES

        points, f, a, b = random_instance(seed=2)
        result = SliceBRS().solve(points, f, a, b, budget=Budget(max_evals=3))
        assert result.status in RESULT_STATUSES
