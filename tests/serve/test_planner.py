"""Tests for in-flight dedup and compatibility grouping."""

from repro.serve.admission import AdmissionController
from repro.serve.model import normalize_query
from repro.serve.planner import BatchPlanner

import pytest

from repro.runtime.errors import AdmissionRejectedError


def _key(a=1.0, b=2.0, dataset="d", version=1, focus=None):
    return normalize_query(dataset, version, "coverage", a, b, focus)


class TestDedup:
    def test_identical_queries_share_one_entry(self):
        planner = BatchPlanner()
        first, new1 = planner.submit(_key(), None)
        second, new2 = planner.submit(_key(), None)
        assert new1 and not new2
        assert first is second
        assert first.waiters == 2
        assert planner.inflight_count() == 1

    def test_duplicate_joins_an_executing_query(self):
        planner = BatchPlanner()
        first, _ = planner.submit(_key(), None)
        planner.drain()  # dispatched, no longer pending — but still live
        assert planner.pending_count() == 0
        late, is_new = planner.submit(_key(), None)
        assert late is first and not is_new

    def test_finish_retires_the_key(self):
        planner = BatchPlanner()
        first, _ = planner.submit(_key(), None)
        planner.drain()
        planner.finish(first)
        assert planner.inflight_count() == 0
        again, is_new = planner.submit(_key(), None)
        assert is_new and again is not first


class TestGrouping:
    def test_same_size_same_dataset_groups_together(self):
        planner = BatchPlanner()
        planner.submit(_key(focus=None), None)
        planner.submit(_key(focus=(0.0, 5.0, 0.0, 5.0)), None)
        planner.submit(_key(a=9.0), None)
        groups = planner.drain()
        assert sorted(len(g) for g in groups) == [1, 2]

    def test_versions_never_share_a_group(self):
        planner = BatchPlanner()
        planner.submit(_key(version=1), None)
        planner.submit(_key(version=2), None)
        assert len(planner.drain()) == 2

    def test_drain_clears_pending(self):
        planner = BatchPlanner()
        planner.submit(_key(), None)
        assert planner.pending_count() == 1
        planner.drain()
        assert planner.drain() == []


class TestAdmission:
    def test_rejects_beyond_capacity(self):
        control = AdmissionController(2)
        control.admit()
        control.admit()
        with pytest.raises(AdmissionRejectedError) as excinfo:
            control.admit()
        assert excinfo.value.queue_depth == 2
        assert excinfo.value.capacity == 2

    def test_release_reopens_a_slot(self):
        control = AdmissionController(1)
        control.admit()
        control.release()
        control.admit()  # must not raise
        assert control.open_count == 1

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            AdmissionController(0)
