"""Tests for the query-serving subsystem."""
