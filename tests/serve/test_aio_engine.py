"""Async engine tests: exactness, tenancy, coalescing, pressure, lifecycle."""

import math

import pytest

from repro.core.slicebrs import SliceBRS
from repro.datasets.registry import scalability_dataset
from repro.runtime.errors import InvalidQueryError
from repro.serve.aio.engine import AsyncServeEngine
from repro.serve.cache import ResultCache
from repro.serve.executor import ServeEngine
from repro.serve.model import QueryRequest
from repro.serve.pressure import PressurePolicy
from repro.serve.store import DatasetStore
from repro.serve.tenancy import TenantRegistry, TenantSpec


@pytest.fixture()
def data():
    return scalability_dataset(120, seed=5)


def make_store(data):
    s = DatasetStore()
    s.add_dataset("demo", data)
    return s


@pytest.fixture()
def store(data):
    return make_store(data)


@pytest.fixture()
def engine(store):
    eng = AsyncServeEngine(store, workers=2, shards=3, batch_window=0.002)
    eng.start_background()
    yield eng
    eng.close()


class TestExactness:
    @pytest.mark.parametrize("a,b", [(4.0, 6.0), (10.0, 15.0), (25.0, 40.0)])
    def test_served_equals_direct_slicebrs(self, engine, data, a, b):
        resp = engine.query(QueryRequest(dataset="demo", a=a, b=b), timeout=60)
        assert resp.status == "ok"
        direct = SliceBRS().solve(data.points, data.score_function(), a, b)
        assert resp.score == pytest.approx(direct.score, abs=1e-9)

    def test_matches_threaded_engine_bytes(self, data):
        request = QueryRequest(dataset="demo", a=8.0, b=12.0)
        with ServeEngine(make_store(data), workers=2, shards=3) as threaded:
            want = threaded.query(request, timeout=60).canonical_bytes()
        eng = AsyncServeEngine(make_store(data), workers=2, shards=3)
        with eng:
            got = eng.query(request, timeout=60).canonical_bytes()
        assert got == want


class TestCacheAndCoalescing:
    def test_warm_hit_is_byte_identical_and_instant(self, engine):
        request = QueryRequest(dataset="demo", a=6.0, b=9.0)
        cold = engine.query(request, timeout=60)
        warm = engine.query(request, timeout=60)
        assert warm.cached and not cold.cached
        assert warm.canonical_bytes() == cold.canonical_bytes()

    def test_identical_inflight_queries_coalesce(self, store):
        eng = AsyncServeEngine(
            store, cache=ResultCache(8), workers=1, batch_window=0.02
        )
        with eng:
            request = QueryRequest(dataset="demo", a=5.0, b=7.0)
            futures = [eng.submit_threadsafe(request) for _ in range(6)]
            responses = [f.result(timeout=60) for f in futures]
        assert len({r.canonical_bytes() for r in responses}) == 1
        solves = eng.registry.counter("brs_serve_spec_solves_total").value
        assert solves == 1


class TestTenancy:
    def test_quota_rejection_and_release(self, data):
        tenants = TenantRegistry()
        tenants.register(TenantSpec(id="small", quota=1))
        # One worker + a wide batch window: the first query is still
        # queued when the second arrives, so the quota is provably hit.
        eng = AsyncServeEngine(
            make_store(data), tenants=tenants, workers=1, batch_window=0.2
        )
        with eng:
            first = eng.submit_threadsafe(
                QueryRequest(dataset="demo", a=5.0, b=7.0), tenant="small"
            )
            second = eng.submit_threadsafe(
                QueryRequest(dataset="demo", a=6.0, b=8.0), tenant="small"
            )
            assert second.result(timeout=60).status == "rejected"
            assert first.result(timeout=60).status == "ok"
            # The slot freed: the same tenant is admitted again.
            third = eng.query(
                QueryRequest(dataset="demo", a=7.0, b=9.0),
                tenant="small", timeout=60,
            )
            assert third.status == "ok"
        assert eng.registry.counter("brs_tenant_rejected_total").value == 1

    def test_dataset_allow_list_enforced(self, engine, store):
        engine.tenants.register(
            TenantSpec(id="walled", datasets=frozenset({"other"}))
        )
        with pytest.raises(InvalidQueryError):
            engine.query(
                QueryRequest(dataset="demo", a=5.0, b=7.0),
                tenant="walled", timeout=60,
            )

    def test_unknown_tenant_gets_permissive_default(self, engine):
        resp = engine.query(
            QueryRequest(dataset="demo", a=5.0, b=7.0),
            tenant="never-registered", timeout=60,
        )
        assert resp.status == "ok"


class TestPressureShedding:
    def test_shed_answers_carry_sound_upper_bounds(self, data):
        # Near-zero thresholds: a single queued item (backlog ratio
        # 1/64) already counts as overload, so every dispatch cycle runs
        # at the grid rung — shedding is deterministic, not
        # load-dependent.
        policy = PressurePolicy(
            enter_shedding=0.001, exit_shedding=0.0005,
            enter_overload=0.002, exit_overload=0.0015,
        )
        eng = AsyncServeEngine(
            make_store(data), pressure=policy, workers=2, batch_window=0.002
        )
        with eng:
            resp = eng.query(
                QueryRequest(dataset="demo", a=8.0, b=12.0), timeout=60
            )
        assert resp.status == "degraded"
        assert resp.solver_status == "gridscan"
        assert resp.upper_bound is not None
        direct = SliceBRS().solve(
            data.points, data.score_function(), 8.0, 12.0
        )
        assert resp.upper_bound >= direct.score - 1e-9
        assert resp.score <= direct.score + 1e-9


class TestLifecycleAndStats:
    def test_stats_shape(self, engine):
        engine.query(QueryRequest(dataset="demo", a=5.0, b=7.0), timeout=60)
        stats = engine.stats()
        assert stats["queue"]["capacity"] == 64
        assert "fair_depth" in stats["queue"]
        assert "pressure" in stats and stats["pressure"]["level"] == 0
        assert "tenants" in stats and "slo" in stats
        snap = engine.tenants_snapshot()
        assert "admission" in snap and "tenants" in snap

    def test_close_is_idempotent_and_rejects_after(self, store):
        eng = AsyncServeEngine(store, workers=1)
        eng.start_background()
        assert eng.query(
            QueryRequest(dataset="demo", a=5.0, b=7.0), timeout=60
        ).status == "ok"
        eng.close()
        eng.close()
        with pytest.raises(RuntimeError):
            eng.submit_threadsafe(QueryRequest(dataset="demo", a=5.0, b=7.0))

    def test_invalidate_bumps_version_and_drops_cache(self, engine):
        request = QueryRequest(dataset="demo", a=5.0, b=7.0)
        first = engine.query(request, timeout=60)
        engine.invalidate("demo")
        resp = engine.query(request, timeout=60)
        assert not resp.cached
        assert resp.version == first.version + 1

    def test_native_async_embedding(self, store):
        import asyncio

        async def scenario():
            async with AsyncServeEngine(store, workers=1) as eng:
                return await eng.submit(
                    QueryRequest(dataset="demo", a=5.0, b=7.0)
                )

        resp = asyncio.run(scenario())
        assert resp.status == "ok"
        assert math.isfinite(resp.score)
