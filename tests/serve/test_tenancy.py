"""Tenant registry and admission: quotas, allow lists, accounting."""

import pytest

from repro.runtime.errors import AdmissionRejectedError, InvalidQueryError
from repro.serve.tenancy import (
    DEFAULT_TENANT,
    TenantAdmission,
    TenantRegistry,
    TenantSpec,
)


class TestTenantSpec:
    def test_rejects_bad_weight_and_quota(self):
        with pytest.raises(ValueError):
            TenantSpec(id="x", weight=0.0)
        with pytest.raises(ValueError):
            TenantSpec(id="x", quota=0)
        with pytest.raises(ValueError):
            TenantSpec(id="")

    def test_allow_list(self):
        spec = TenantSpec(id="x", datasets=frozenset({"a", "b"}))
        assert spec.allows("a") and not spec.allows("c")
        assert TenantSpec(id="open").allows("anything")


class TestRegistry:
    def test_unknown_tenant_resolves_to_default_spec(self):
        reg = TenantRegistry()
        spec = reg.resolve("stranger")
        assert spec.id == "stranger"
        assert spec.quota == 16 and spec.weight == 1.0

    def test_none_resolves_to_public_tenant(self):
        reg = TenantRegistry()
        assert reg.resolve(None).id == DEFAULT_TENANT

    def test_authorize_enforces_allow_list(self):
        reg = TenantRegistry()
        reg.register(TenantSpec(id="walled", datasets=frozenset({"mine"})))
        assert reg.authorize("walled", "mine").id == "walled"
        with pytest.raises(InvalidQueryError):
            reg.authorize("walled", "other")

    def test_describe_and_weights(self):
        reg = TenantRegistry()
        reg.register(TenantSpec(id="a", weight=3.0))
        reg.register(TenantSpec(id="b"))
        assert reg.weights() == {"a": 3.0, "b": 1.0}
        ids = [d["id"] for d in reg.describe()]
        assert ids == sorted(ids)


class TestAdmission:
    def test_quota_then_capacity(self):
        reg = TenantRegistry()
        reg.register(TenantSpec(id="small", quota=2))
        adm = TenantAdmission(reg, capacity=3)
        adm.admit("small")
        adm.admit("small")
        with pytest.raises(AdmissionRejectedError):
            adm.admit("small")  # per-tenant quota
        adm.admit("other")
        with pytest.raises(AdmissionRejectedError):
            adm.admit("another")  # global capacity
        assert adm.open_total == 3

    def test_release_reopens_the_slot(self):
        reg = TenantRegistry()
        reg.register(TenantSpec(id="t", quota=1))
        adm = TenantAdmission(reg)
        adm.admit("t")
        with pytest.raises(AdmissionRejectedError):
            adm.admit("t")
        adm.release("t")
        adm.admit("t")
        assert adm.open_count("t") == 1

    def test_stats_shape_and_counters(self):
        reg = TenantRegistry()
        reg.register(TenantSpec(id="t", quota=1))
        adm = TenantAdmission(reg, capacity=4)
        adm.admit("t")
        with pytest.raises(AdmissionRejectedError):
            adm.admit("t")
        stats = adm.stats()
        assert stats["capacity"] == 4
        assert stats["tenants"]["t"]["open"] == 1
        assert stats["tenants"]["t"]["admitted_total"] == 1
        assert stats["tenants"]["t"]["rejected_total"] == 1
