"""Load generator: schedule determinism, summary math, and the
coordinated-omission regression.

The headline test injects a stall into the submit path and pins the two
latency views apart: the honest intended-time percentiles must surface
the stall while the closed-loop (service-time) view claims everything
was fast.  That asymmetry *is* the coordinated-omission fix — if the
loadgen ever reverts to timestamping from the actual send, this test
fails.
"""

import time
from concurrent.futures import Future

import pytest

from repro.datasets.registry import scalability_dataset
from repro.serve.aio.engine import AsyncServeEngine
from repro.serve.loadgen import (
    LoadSample,
    ScheduledQuery,
    WorkloadMix,
    fire_schedule,
    poisson_schedule,
    run_load,
    summarize,
)
from repro.serve.model import QueryRequest, QueryResponse
from repro.serve.store import DatasetStore

MIXES = (
    WorkloadMix(tenant="alpha", share=3.0, k_choices=(1.0, 2.0)),
    WorkloadMix(tenant="beta", share=1.0, k_choices=(5.0,)),
)


def ok_response(request):
    return QueryResponse(
        status="ok", dataset=request.dataset, version=1,
        a=1.0, b=1.0, center=(0.0, 0.0), score=1.0,
    )


def instant_submit(request, tenant):
    fut = Future()
    fut.set_result(ok_response(request))
    return fut


class TestPoissonSchedule:
    def test_deterministic_given_seed(self):
        first = poisson_schedule(MIXES, target_qps=200.0, duration=1.0, seed=4)
        second = poisson_schedule(MIXES, target_qps=200.0, duration=1.0, seed=4)
        assert first == second
        other = poisson_schedule(MIXES, target_qps=200.0, duration=1.0, seed=5)
        assert first != other

    def test_arrivals_respect_mixes(self):
        schedule = poisson_schedule(
            MIXES, target_qps=400.0, duration=1.0, seed=1
        )
        assert len(schedule) > 200
        times = [s.intended for s in schedule]
        assert times == sorted(times)
        assert all(0.0 <= t < 1.0 for t in times)
        by_tenant = {t: 0 for t in ("alpha", "beta")}
        for s in schedule:
            by_tenant[s.tenant] += 1
            mix = MIXES[0] if s.tenant == "alpha" else MIXES[1]
            assert s.request.k in mix.k_choices
            assert s.request.dataset == mix.dataset
        # 3:1 shares: alpha should clearly dominate.
        assert by_tenant["alpha"] > 2 * by_tenant["beta"]

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_schedule(MIXES, target_qps=0.0, duration=1.0)
        with pytest.raises(ValueError):
            poisson_schedule(MIXES, target_qps=10.0, duration=-1.0)
        with pytest.raises(ValueError):
            poisson_schedule((), target_qps=10.0, duration=1.0)
        with pytest.raises(ValueError):
            WorkloadMix(tenant="x", share=0.0)
        with pytest.raises(ValueError):
            WorkloadMix(tenant="x", k_choices=())


class TestCoordinatedOmission:
    def test_injected_stall_shows_up_in_intended_time_percentiles(self):
        # Ten arrivals 10 ms apart; the *driver* stalls 0.4 s before the
        # third send (a GC pause, a slow accept loop — anything between
        # schedule and wire).  Every query served after the stall
        # completes instantly once sent, so the closed-loop view claims
        # the run was fast; open-loop accounting must charge the stall
        # to every arrival whose intended time passed while the driver
        # was stuck.
        schedule = [
            ScheduledQuery(
                intended=i * 0.01, tenant="alpha",
                request=QueryRequest(dataset="demo", k=1.0),
            )
            for i in range(10)
        ]
        calls = {"n": 0}

        def stalling_sleep(seconds):
            calls["n"] += 1
            time.sleep(seconds + (0.4 if calls["n"] == 3 else 0.0))

        samples = fire_schedule(
            instant_submit, schedule, sleep=stalling_sleep, wait_timeout=10.0
        )
        assert len(samples) == len(schedule)
        report = summarize(samples, target_qps=100.0, offered=len(schedule))

        # The honest view sees the stall; the closed-loop view hides it.
        assert report.p99_seconds > 0.25
        assert report.naive_p99_seconds < 0.1
        # Post-stall arrivals were sent late and the samples say so.
        late = [s for s in samples if s.actual > s.intended + 0.2]
        assert len(late) >= 5
        assert all(s.latency >= s.service_latency - 1e-9 for s in samples)

    def test_driver_sleeps_only_forward(self):
        # A schedule the driver can keep up with: actual tracks intended
        # closely and never precedes it.
        schedule = [
            ScheduledQuery(
                intended=i * 0.005, tenant="alpha",
                request=QueryRequest(dataset="demo", k=1.0),
            )
            for i in range(8)
        ]
        samples = fire_schedule(instant_submit, schedule, wait_timeout=5.0)
        assert all(s.actual >= s.intended - 1e-6 for s in samples)
        assert max(s.latency for s in samples) < 0.2


class TestFireSchedule:
    def test_submit_exception_becomes_error_sample(self):
        schedule = [
            ScheduledQuery(
                intended=0.0, tenant="alpha",
                request=QueryRequest(dataset="demo", k=float(i + 1)),
            )
            for i in range(4)
        ]
        calls = {"n": 0}

        def flaky_submit(request, tenant):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("engine closed")
            return instant_submit(request, tenant)

        samples = fire_schedule(flaky_submit, schedule, wait_timeout=5.0)
        assert len(samples) == 4
        assert sum(1 for s in samples if s.status == "error") == 1
        assert sum(1 for s in samples if s.status == "ok") == 3


class TestSummarize:
    def test_rate_and_goodput_math(self):
        def sample(status, tenant="alpha", intended=0.0, latency=0.1):
            return LoadSample(
                tenant=tenant, intended=intended, actual=intended,
                latency=latency, service_latency=latency, status=status,
            )

        samples = [
            sample("ok", latency=0.1),
            sample("ok", tenant="beta", intended=0.5, latency=0.3),
            sample("degraded", intended=1.0, latency=0.2),
            sample("rejected", intended=1.5, latency=0.0),
        ]
        report = summarize(samples, target_qps=10.0, offered=5)
        assert report.completed == 4
        assert report.shed_rate == pytest.approx(0.25)
        assert report.error_rate == 0.0
        assert report.degraded_rate == pytest.approx(0.25)
        # Wall clock: first intended 0.0 to last completion (the
        # rejected arrival at 1.5, served instantly).
        assert report.duration_seconds == pytest.approx(1.5)
        assert report.goodput_qps == pytest.approx(3 / 1.5)
        assert set(report.per_tenant) == {"alpha", "beta"}
        assert report.per_tenant["beta"]["count"] == 1.0
        row = report.row()
        assert row["offered"] == 5 and row["p99_ms"] >= row["p50_ms"]
        assert isinstance(row["slo_healthy"], bool)

    def test_empty_run_is_well_defined(self):
        report = summarize([], target_qps=10.0, offered=0)
        assert report.completed == 0
        assert report.goodput_qps == 0.0
        assert report.shed_rate == 0.0


class TestEndToEnd:
    def test_run_load_against_live_async_engine(self):
        store = DatasetStore()
        store.add_dataset("demo", scalability_dataset(80, seed=2))
        eng = AsyncServeEngine(store, workers=2, batch_window=0.002)
        with eng:
            report = run_load(
                lambda req, tenant: eng.submit_threadsafe(req, tenant=tenant),
                (WorkloadMix(tenant="alpha", k_choices=(1.0, 2.0, 3.0)),),
                target_qps=60.0,
                duration=0.3,
                seed=3,
            )
        assert report.completed == report.offered > 0
        assert report.error_rate == 0.0
        assert report.slo["window_requests"] == report.completed
