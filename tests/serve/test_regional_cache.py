"""Regional cache invalidation: semantics, concurrency, metric reconciliation."""

import random
import threading

from repro.geometry.rect import BBox
from repro.obs.metrics import MetricsRegistry, metrics_scope
from repro.serve.cache import ResultCache
from repro.serve.model import normalize_query


def _key(dataset="d", version=1, a=1.0, b=2.0, focus=None):
    return normalize_query(dataset, version, "coverage", a, b, focus=focus)


class TestRegionalSemantics:
    def test_no_regions_is_a_no_op(self):
        cache = ResultCache(8)
        cache.put(_key(), "answer")
        assert cache.invalidate_region("d", []) == 0
        assert _key() in cache

    def test_unfocused_entries_are_always_evicted(self):
        cache = ResultCache(8)
        cache.put(_key(), "whole-dataset answer")
        dropped = cache.invalidate_region("d", [BBox(50.0, 51.0, 50.0, 51.0)])
        assert dropped == 1
        assert _key() not in cache

    def test_focused_entry_survives_a_miss_and_dies_on_a_hit(self):
        cache = ResultCache(8)
        near = _key(focus=(1.0, 2.0, 1.0, 2.0))
        far = _key(focus=(8.0, 9.0, 8.0, 9.0))
        cache.put(near, "near")
        cache.put(far, "far")
        dropped = cache.invalidate_region("d", [BBox(1.5, 1.5, 1.5, 1.5)])
        assert dropped == 1
        assert near not in cache
        assert far in cache

    def test_boundary_contact_counts_as_stale(self):
        cache = ResultCache(8)
        key = _key(focus=(1.0, 2.0, 1.0, 2.0))
        cache.put(key, "edge")
        # The mutated point sits exactly on the focus boundary: closed
        # semantics must evict it.
        assert cache.invalidate_region("d", [BBox(2.0, 3.0, 1.0, 2.0)]) == 1
        assert key not in cache

    def test_multiple_regions_union_their_evictions(self):
        cache = ResultCache(8)
        left = _key(focus=(0.0, 1.0, 0.0, 1.0))
        mid = _key(focus=(4.0, 5.0, 4.0, 5.0))
        right = _key(focus=(8.0, 9.0, 8.0, 9.0))
        for k in (left, mid, right):
            cache.put(k, "x")
        dropped = cache.invalidate_region(
            "d", [BBox(0.5, 0.6, 0.5, 0.6), BBox(8.5, 8.6, 8.5, 8.6)]
        )
        assert dropped == 2
        assert mid in cache and left not in cache and right not in cache

    def test_other_datasets_are_untouched(self):
        cache = ResultCache(8)
        mine = _key(dataset="d")
        other = _key(dataset="e")
        cache.put(mine, "x")
        cache.put(other, "y")
        assert cache.invalidate_region("d", [BBox(0.0, 9.0, 0.0, 9.0)]) == 1
        assert other in cache


class TestMetricsReconcile:
    def test_stats_and_registry_count_regional_drops(self):
        registry = MetricsRegistry()
        with metrics_scope(registry):
            cache = ResultCache(8)
            cache.put(_key(), "a")
            cache.put(_key(a=3.0), "b")
            cache.put(_key(dataset="e"), "c")
            dropped = cache.invalidate_region("d", [BBox(0.0, 1.0, 0.0, 1.0)])
        assert dropped == 2
        assert cache.stats.invalidations == 2
        assert (
            registry.counter("brs_result_cache_regional_invalidations_total").value
            == 2
        )
        assert cache.stats.size == 1


class TestConcurrency:
    def test_readers_writers_and_invalidators_do_not_deadlock(self):
        """Hammer the cache from three thread roles; counts must reconcile.

        Every entry ever stored is either still present at the end or was
        removed by exactly one mechanism the cache accounts for (LRU
        eviction or invalidation), so the final counters must add up.
        """
        cache = ResultCache(512)  # roomy: no LRU evictions to entangle counts
        stop = threading.Event()
        errors = []
        n_writes = [0, 0, 0]
        dropped_total = [0]
        lock = threading.Lock()

        def writer(worker):
            rng = random.Random(worker)
            count = 0
            try:
                while not stop.is_set():
                    x = rng.uniform(0.0, 9.0)
                    key = _key(
                        a=1.0 + worker,
                        b=1.0 + count % 50,
                        focus=(x, x + 0.5, x, x + 0.5),
                    )
                    cache.put(key, f"v{worker}-{count}")
                    cache.get(key)
                    count += 1
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)
            n_writes[worker] = count

        def invalidator():
            rng = random.Random(99)
            try:
                while not stop.is_set():
                    x = rng.uniform(0.0, 9.0)
                    dropped = cache.invalidate_region(
                        "d", [BBox(x, x + 1.0, x, x + 1.0)]
                    )
                    with lock:
                        dropped_total[0] += dropped
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(3)
        ] + [threading.Thread(target=invalidator)]
        for t in threads:
            t.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for t in threads:
            t.join(timeout=30.0)
        timer.cancel()
        stop.set()
        assert not any(t.is_alive() for t in threads), "deadlocked threads"
        assert not errors

        stats = cache.stats
        assert stats.invalidations == dropped_total[0]
        # Duplicate keys overwrite in place (not an eviction), so puts
        # split exactly into survivors + LRU evictions + invalidations +
        # overwrites; with distinct (a, b, focus) keys per put the cheap
        # reconciliation below holds.
        assert stats.size + stats.evictions + stats.invalidations <= sum(n_writes)
        assert stats.size <= 512
