"""Tests for the LRU result cache and its metrics mirroring."""

import threading

import pytest

from repro.obs.metrics import MetricsRegistry, metrics_scope
from repro.serve.cache import ResultCache
from repro.serve.model import normalize_query


def _key(i, dataset="d", version=1):
    return normalize_query(dataset, version, "coverage", 1.0 + i, 2.0)


class TestLRU:
    def test_rejects_bad_bound(self):
        with pytest.raises(ValueError):
            ResultCache(0)

    def test_hit_and_miss_counting(self):
        cache = ResultCache(4)
        assert cache.get(_key(0)) is None
        cache.put(_key(0), "answer")
        assert cache.get(_key(0)) == "answer"
        stats = cache.stats
        assert (stats.hits, stats.misses, stats.size) == (1, 1, 1)
        assert stats.hit_rate == 0.5

    def test_none_is_not_storable(self):
        with pytest.raises(ValueError):
            ResultCache(2).put(_key(0), None)

    def test_eviction_is_least_recently_used(self):
        cache = ResultCache(2)
        cache.put(_key(0), "a")
        cache.put(_key(1), "b")
        assert cache.get(_key(0)) == "a"  # refresh 0; 1 becomes LRU
        cache.put(_key(2), "c")
        assert _key(1) not in cache
        assert cache.get(_key(0)) == "a"
        assert cache.get(_key(2)) == "c"
        assert cache.stats.evictions == 1

    def test_contains_does_not_touch_counters(self):
        cache = ResultCache(2)
        cache.put(_key(0), "a")
        assert _key(0) in cache
        assert _key(1) not in cache
        stats = cache.stats
        assert stats.hits == 0 and stats.misses == 0

    def test_clear_keeps_counters(self):
        cache = ResultCache(2)
        cache.put(_key(0), "a")
        cache.get(_key(0))
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1


class TestInvalidation:
    def test_purge_drops_all_versions_of_one_dataset(self):
        cache = ResultCache(8)
        cache.put(_key(0, version=1), "v1")
        cache.put(_key(0, version=2), "v2")
        cache.put(_key(0, dataset="other"), "keep")
        assert cache.purge_dataset("d") == 2
        assert len(cache) == 1
        assert cache.get(_key(0, dataset="other")) == "keep"
        assert cache.stats.invalidations == 2

    def test_version_bump_makes_old_entries_unreachable(self):
        cache = ResultCache(8)
        cache.put(_key(0, version=1), "stale")
        # Even without purging, a bumped version can never see the old key.
        assert cache.get(_key(0, version=2)) is None


class TestMetricsMirroring:
    def test_counters_published_into_ambient_registry(self):
        registry = MetricsRegistry()
        with metrics_scope(registry):
            cache = ResultCache(1)
            cache.get(_key(0))           # miss
            cache.put(_key(0), "a")
            cache.get(_key(0))           # hit
            cache.put(_key(1), "b")      # evicts key 0
        snap = registry.snapshot()
        assert snap["brs_result_cache_hits_total"]["value"] == 1
        assert snap["brs_result_cache_misses_total"]["value"] == 1
        assert snap["brs_result_cache_evictions_total"]["value"] == 1
        assert snap["brs_result_cache_entries"]["value"] == 1


class TestThreadSafety:
    def test_concurrent_mixed_operations_stay_consistent(self):
        cache = ResultCache(16)
        errors = []

        def worker(worker_id):
            try:
                for i in range(200):
                    cache.put(_key(i % 24), f"w{worker_id}")
                    cache.get(_key((i + 7) % 24))
                    if i % 50 == 0:
                        cache.purge_dataset("d")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 16
        stats = cache.stats
        assert stats.hits + stats.misses == 4 * 200
