"""Runtime lock-order pass over the async tier's hot paths.

Constructs the full :class:`AsyncServeEngine` stack *inside*
:func:`~repro.analysis.sanitizer.instrument_locks`, so every
``threading.Lock``/``RLock`` the repro package creates (fair queue,
admission, cache, planner, SLO tracker, scheduler bookkeeping) becomes a
sanitized lock.  Then it drives the paths where tenant quotas and
request coalescing interleave from many threads at once and asserts the
observed lock-order graph has no inversions — the dynamic complement to
the static BRS010/BRS011 rules.
"""

from concurrent.futures import ThreadPoolExecutor

from repro.analysis.sanitizer import instrument_locks
from repro.datasets.registry import scalability_dataset
from repro.serve.aio.engine import AsyncServeEngine
from repro.serve.model import QueryRequest
from repro.serve.store import DatasetStore
from repro.serve.tenancy import TenantRegistry, TenantSpec


def test_quota_and_coalescing_paths_have_no_lock_inversions():
    data = scalability_dataset(100, seed=4)

    with instrument_locks() as san:
        store = DatasetStore()
        store.add_dataset("demo", data)
        tenants = TenantRegistry()
        tenants.register(TenantSpec(id="alpha", weight=2.0, quota=4))
        tenants.register(TenantSpec(id="beta", weight=1.0, quota=2))
        engine = AsyncServeEngine(
            store, tenants=tenants, workers=2,
            queue_capacity=16, batch_window=0.005,
        )
        engine.start_background()
        try:
            def client(worker):
                # Identical rectangles across workers: the coalescing
                # path runs concurrently with quota admits/releases and
                # occasional rejections (beta's quota is tiny).
                tenant = "alpha" if worker % 2 == 0 else "beta"
                futures = [
                    engine.submit_threadsafe(
                        QueryRequest(
                            dataset="demo",
                            a=4.0 + (i % 3),
                            b=6.0 + (i % 3),
                        ),
                        tenant=tenant,
                    )
                    for i in range(8)
                ]
                return [f.result(timeout=60) for f in futures]

            with ThreadPoolExecutor(max_workers=4) as pool:
                rounds = list(pool.map(client, range(4)))
            # Mid-flight control-plane traffic shares the same locks.
            engine.invalidate("demo")
            engine.stats()
            engine.tenants_snapshot()
            engine.query(QueryRequest(dataset="demo", a=5.0, b=7.0),
                         tenant="alpha", timeout=60)
        finally:
            engine.close()

    statuses = {r.status for responses in rounds for r in responses}
    assert "ok" in statuses  # the drive actually exercised the solve path
    report = san.report()
    assert report["inversions"] == []
    assert san.clean
    # The pass covered project locks, not a vacuous no-op run.
    serve_locks = [name for name in report["locks"] if "serve" in name]
    assert serve_locks
