"""End-to-end tests of the HTTP front end and its client."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.slicebrs import SliceBRS
from repro.datasets.registry import scalability_dataset
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.executor import ServeEngine
from repro.serve.model import QueryRequest
from repro.serve.server import BRSServer
from repro.serve.store import DatasetStore


@pytest.fixture(scope="module")
def data():
    return scalability_dataset(100, seed=9)


@pytest.fixture()
def server(data):
    store = DatasetStore()
    store.add_dataset("demo", data)
    engine = ServeEngine(store, workers=2, shards=3, batch_window=0.002)
    with BRSServer(engine, port=0) as srv:
        yield srv


@pytest.fixture()
def client(server):
    return ServeClient(server.url, timeout=30.0)


class TestQueryEndpoint:
    def test_roundtrip_matches_direct_solve(self, client, data):
        resp = client.query(QueryRequest(dataset="demo", a=400.0, b=600.0))
        assert resp.status == "ok"
        direct = SliceBRS().solve(
            data.points, data.score_function(), 400.0, 600.0
        )
        assert resp.score == pytest.approx(direct.score, abs=1e-9)

    def test_second_query_served_from_cache(self, client):
        req = QueryRequest(dataset="demo", a=300.0, b=500.0)
        assert not client.query(req).cached
        assert client.query(req).cached

    def test_unknown_dataset_is_http_400(self, client):
        doc = client.query_raw({"dataset": "nope", "a": 1.0, "b": 1.0})
        assert "unknown dataset" in doc["error"]

    def test_unknown_field_is_http_400(self, client):
        doc = client.query_raw({"dataset": "demo", "a": 1.0, "b": 1.0, "x": 2})
        assert "unknown request fields" in doc["error"]

    def test_malformed_body_is_http_400(self, server):
        req = urllib.request.Request(
            server.url + "/v1/query",
            data=b"this is not json",
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        try:
            urllib.request.urlopen(req, timeout=10)
            raise AssertionError("expected HTTP 400")
        except urllib.error.HTTPError as exc:
            assert exc.code == 400
            assert "not valid JSON" in json.loads(exc.read())["error"]

    def test_rejected_query_is_http_429(self, data):
        store = DatasetStore()
        store.add_dataset("demo", data)
        engine = ServeEngine(
            store, workers=1, queue_capacity=1, batch_window=0.4
        )
        with BRSServer(engine, port=0) as srv:
            c = ServeClient(srv.url, timeout=30.0)
            held = engine.submit(QueryRequest(dataset="demo", a=210.0, b=330.0))
            req = urllib.request.Request(
                srv.url + "/v1/query",
                data=json.dumps({"dataset": "demo", "a": 10.0, "b": 16.0}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            try:
                urllib.request.urlopen(req, timeout=10)
                raise AssertionError("expected HTTP 429")
            except urllib.error.HTTPError as exc:
                assert exc.code == 429
                assert json.loads(exc.read())["status"] == "rejected"
            # The typed client surfaces the same thing as data, not an error.
            rejected = c.query(QueryRequest(dataset="demo", a=11.0, b=17.0))
            assert rejected.status == "rejected"
            assert held.result(timeout=60).status == "ok"


class TestOperationalEndpoints:
    def test_healthz(self, client):
        assert client.healthy()

    def test_datasets_listing(self, client):
        listing = client.datasets()
        assert [d["id"] for d in listing] == ["demo"]
        assert listing[0]["version"] == 1

    def test_stats_shape(self, client):
        client.query(QueryRequest(dataset="demo", a=250.0, b=400.0))
        stats = client.stats()
        assert stats["protocol"] == 1
        assert stats["cache"]["misses"] >= 1
        assert stats["queue"]["capacity"] > 0

    def test_invalidate_bumps_version(self, client):
        req = QueryRequest(dataset="demo", a=275.0, b=425.0)
        v0 = client.query(req).version
        dataset, version = client.invalidate("demo")
        assert (dataset, version) == ("demo", v0 + 1)
        after = client.query(req)
        assert after.version == v0 + 1 and not after.cached

    def test_invalidate_unknown_dataset_raises(self, client):
        with pytest.raises(ServeClientError, match="invalidate failed"):
            client.invalidate("nope")

    def test_metrics_exposition(self, client):
        client.query(QueryRequest(dataset="demo", a=260.0, b=410.0))
        text = client.metrics_text()
        assert "# TYPE brs_serve_requests_total counter" in text
        assert "brs_serve_request_seconds_bucket" in text

    def test_unknown_path_is_404(self, server):
        try:
            urllib.request.urlopen(server.url + "/nope", timeout=10)
            raise AssertionError("expected HTTP 404")
        except urllib.error.HTTPError as exc:
            assert exc.code == 404

    def test_client_error_when_server_unreachable(self):
        client = ServeClient("http://127.0.0.1:9", timeout=0.5)
        assert not client.healthy()
        with pytest.raises(ServeClientError):
            client.stats()
