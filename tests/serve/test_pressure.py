"""Pressure monitor: scoring, hysteresis, rung mapping."""

import pytest

from repro.serve.pressure import (
    LEVEL_HEALTHY,
    LEVEL_OVERLOAD,
    LEVEL_SHEDDING,
    PressureMonitor,
    PressurePolicy,
)
from repro.serve.solvecore import RUNG_COVER, RUNG_EXACT, RUNG_GRID


def healthy_slo(burn=0.0, p99_ok=True):
    return {
        "error_budget_burn": burn,
        "verdicts": {"p99_ok": p99_ok},
    }


class TestPolicyValidation:
    def test_orderings_enforced(self):
        with pytest.raises(ValueError):
            PressurePolicy(enter_shedding=0.2, exit_shedding=0.3)
        with pytest.raises(ValueError):
            PressurePolicy(enter_overload=0.5, exit_overload=0.6)
        with pytest.raises(ValueError):
            PressurePolicy(enter_shedding=0.9, enter_overload=0.8)


class TestTransitions:
    def test_backlog_walks_the_ladder_up_and_down(self):
        mon = PressureMonitor()
        assert mon.observe(0.1, healthy_slo()) == LEVEL_HEALTHY
        assert mon.rung() == RUNG_EXACT
        assert mon.observe(0.6, healthy_slo()) == LEVEL_SHEDDING
        assert mon.rung() == RUNG_COVER
        assert mon.observe(0.95, healthy_slo()) == LEVEL_OVERLOAD
        assert mon.rung() == RUNG_GRID
        # 0.65 is above exit_overload (0.6): still overloaded.
        assert mon.observe(0.65, healthy_slo()) == LEVEL_OVERLOAD
        # 0.55 drops below exit_overload but not exit_shedding (0.25).
        assert mon.observe(0.55, healthy_slo()) == LEVEL_SHEDDING
        assert mon.observe(0.5, healthy_slo()) == LEVEL_SHEDDING
        assert mon.observe(0.1, healthy_slo()) == LEVEL_HEALTHY

    def test_hysteresis_blocks_flapping(self):
        mon = PressureMonitor()
        mon.observe(0.6, healthy_slo())
        # Scores between exit (0.25) and enter (0.5) keep the level.
        for score in (0.45, 0.3, 0.26):
            assert mon.observe(score, healthy_slo()) == LEVEL_SHEDDING
        assert mon.observe(0.2, healthy_slo()) == LEVEL_HEALTHY

    def test_burn_alone_triggers_shedding(self):
        mon = PressureMonitor()
        # burn 1.5 * weight 0.5 = 0.75 >= enter_shedding.
        assert mon.observe(0.0, healthy_slo(burn=1.5)) == LEVEL_SHEDDING

    def test_p99_violation_bumps_score_to_shedding(self):
        mon = PressureMonitor()
        assert mon.observe(0.0, healthy_slo(p99_ok=False)) == LEVEL_SHEDDING
        assert mon.observe(0.0, healthy_slo(p99_ok=True)) == LEVEL_HEALTHY

    def test_snapshot_counts_transitions(self):
        mon = PressureMonitor()
        mon.observe(0.6, healthy_slo())
        mon.observe(0.1, healthy_slo())
        snap = mon.snapshot()
        assert snap["level"] == LEVEL_HEALTHY
        assert snap["transitions"] == 2
        assert snap["rung"] == RUNG_EXACT
        assert "policy" in snap

    def test_missing_slo_fields_default_benign(self):
        mon = PressureMonitor()
        assert mon.observe(0.0, {}) == LEVEL_HEALTHY
