"""In-process saturation sweep: the pressure ladder under a real burst.

Drives :class:`AsyncServeEngine` open-loop through a short
healthy → overload → recovery arc and asserts the observable contract:

* the pressure verdict flips ``healthy → shedding → recovered`` (the
  transitions counter proves both edges, not just the peak);
* every shed answer produced on the way is *certified*: its
  ``upper_bound`` dominates the true optimum (spot-checked against the
  exhaustive :class:`NaiveBRS` oracle) while its reported score never
  exceeds it.

Kept deliberately small (a few hundred objects, a one-worker pool) so
the whole arc fits in tier-1 runtime.
"""

import time

import pytest

from repro.core.naive import NaiveBRS
from repro.datasets.registry import scalability_dataset
from repro.serve.aio.engine import AsyncServeEngine
from repro.serve.model import QueryRequest
from repro.serve.tenancy import TenantRegistry, TenantSpec


@pytest.fixture(scope="module")
def data():
    return scalability_dataset(160, seed=7)


def burst_requests(count):
    """Distinct (a, b) pairs: distinct group keys, so backlog is real.

    Identical rectangles would coalesce into one batch group and the
    queue would never fill — the sweep must defeat its own dedup.
    """
    return [
        QueryRequest(dataset="demo", a=4.0 + 0.5 * i, b=6.0 + 0.7 * i)
        for i in range(count)
    ]


def make_engine(data, **kwargs):
    from repro.serve.store import DatasetStore

    store = DatasetStore()
    store.add_dataset("demo", data)
    tenants = TenantRegistry()
    tenants.register(TenantSpec(id="load", quota=64))
    defaults = dict(
        tenants=tenants, cache=None, workers=1,
        queue_capacity=24, batch_window=0.02,
    )
    defaults.update(kwargs)
    return AsyncServeEngine(store, **defaults)


class TestSaturationArc:
    def test_verdict_flips_healthy_shedding_recovered(self, data):
        eng = make_engine(data)
        with eng:
            # -- healthy: light sequential load keeps the ladder at exact.
            for req in burst_requests(3):
                assert eng.query(req, tenant="load", timeout=60).status == "ok"
            assert eng.pressure_snapshot()["level"] == 0
            assert eng.slo_snapshot()["healthy"]

            # -- overload: an open-loop burst of distinct rectangles.  One
            # worker plus the dispatch throttle keeps the backlog in the
            # fair queue where the monitor can see it.
            futures = [
                eng.submit_threadsafe(req, tenant="load")
                for req in burst_requests(22)
            ]
            peak = 0
            deadline = time.perf_counter() + 10.0
            while time.perf_counter() < deadline:
                peak = max(peak, eng.pressure_snapshot()["level"])
                if peak >= 1 or all(f.done() for f in futures):
                    break
                time.sleep(0.001)
            responses = [f.result(timeout=60) for f in futures]
            assert peak >= 1, "burst never registered as pressure"

            shed = [r for r in responses if r.status == "degraded"]
            assert shed, "overload produced no shed answers"
            assert all(
                r.solver_status in ("cover", "gridscan") for r in shed
            )
            assert all(r.upper_bound is not None for r in shed)

            # -- certified bounds: oracle spot-check on two shed answers.
            fn = data.score_function()
            for resp in shed[:2]:
                oracle = NaiveBRS().solve(data.points, fn, resp.a, resp.b)
                assert resp.upper_bound >= oracle.score - 1e-9
                assert resp.score <= oracle.score + 1e-9

            # -- recovered: light load drains the queue and the hysteresis
            # walks the ladder back down to healthy.
            deadline = time.perf_counter() + 15.0
            while time.perf_counter() < deadline:
                eng.query(
                    QueryRequest(dataset="demo", a=3.0, b=4.5),
                    tenant="load", timeout=60,
                )
                if eng.pressure_snapshot()["level"] == 0:
                    break
                time.sleep(0.01)
            snap = eng.pressure_snapshot()
            assert snap["level"] == 0, "pressure never recovered"
            # Both edges happened: up into shedding and back down.
            assert snap["transitions"] >= 2
            assert eng.slo_snapshot()["healthy"]

    def test_capacity_rejections_are_explicit_and_counted(self, data):
        # A deliberately tiny queue: overflow must be refused loudly
        # (status "rejected" with a reason), never silently dropped.
        eng = make_engine(data, queue_capacity=4)
        with eng:
            futures = [
                eng.submit_threadsafe(req, tenant="load")
                for req in burst_requests(16)
            ]
            responses = [f.result(timeout=60) for f in futures]
        rejected = [r for r in responses if r.status == "rejected"]
        served = [r for r in responses if r.status in ("ok", "degraded")]
        assert rejected and served
        assert all(r.error for r in rejected)
        assert eng.slo_snapshot()["shed_ratio"] > 0.0
