"""Differential acceptance: threaded vs asyncio servers, byte for byte.

The asyncio tier replaces the threaded server as the default front end,
so the two must be *observably interchangeable*: an identical query
stream driven over HTTP through both produces byte-identical
``canonical_bytes`` responses — the canonical core excludes only the
envelope timing fields (``seconds``, ``cached``, ``batch_size``), which
legitimately differ between runs.  This suite is the contract CI pins.
"""

import pytest

from repro.datasets.registry import scalability_dataset
from repro.serve.aio import AsyncBRSServer, AsyncServeEngine
from repro.serve.client import ServeClient
from repro.serve.executor import ServeEngine
from repro.serve.model import QueryRequest
from repro.serve.server import BRSServer
from repro.serve.store import DatasetStore


@pytest.fixture(scope="module")
def data():
    return scalability_dataset(100, seed=9)


def make_store(data):
    store = DatasetStore()
    store.add_dataset("demo", data)
    return store


@pytest.fixture()
def threaded_client(data):
    engine = ServeEngine(make_store(data), workers=2, shards=3,
                         batch_window=0.002)
    with BRSServer(engine, port=0) as srv:
        yield ServeClient(srv.url, timeout=30.0)


@pytest.fixture()
def aio_client(data):
    engine = AsyncServeEngine(make_store(data), workers=2, shards=3,
                              batch_window=0.002)
    srv = AsyncBRSServer(engine, port=0)
    srv.start()
    try:
        yield ServeClient(srv.url, timeout=30.0)
    finally:
        srv.close()


def query_stream():
    """A mixed stream: sized, k-scaled, focused, repeated, and degraded."""
    return [
        QueryRequest(dataset="demo", a=400.0, b=600.0),
        QueryRequest(dataset="demo", k=5.0),
        QueryRequest(dataset="demo", k=10.0, aspect=2.0),
        QueryRequest(dataset="demo", a=400.0, b=600.0),  # repeat: cache path
        QueryRequest(
            dataset="demo", a=900.0, b=1200.0,
            focus=(1500.0, 8200.0, 900.0, 8700.0),
        ),
        QueryRequest(dataset="demo", a=250.0, b=350.0),
    ]


class TestDifferential:
    def test_identical_stream_is_byte_identical(
        self, threaded_client, aio_client
    ):
        threaded = [threaded_client.query(q) for q in query_stream()]
        asyncio_ = [aio_client.query(q) for q in query_stream()]
        assert all(r.status == "ok" for r in threaded)
        for i, (a, b) in enumerate(zip(threaded, asyncio_)):
            assert a.canonical_bytes() == b.canonical_bytes(), (
                f"stream position {i} diverged"
            )

    def test_error_paths_agree(self, threaded_client, aio_client):
        bad = QueryRequest(dataset="no-such-dataset", a=1.0, b=1.0)
        for client in (threaded_client, aio_client):
            with pytest.raises(Exception):
                client.query(bad)

    def test_shared_protocol_surfaces(self, threaded_client, aio_client):
        for client in (threaded_client, aio_client):
            assert client.healthy()
            client.query(QueryRequest(dataset="demo", a=300.0, b=450.0))
            stats = client.stats()
            assert "cache" in stats and "queue" in stats
            assert "brs_serve_requests_total" in client.metrics_text()

    def test_degraded_answers_agree_on_core_fields(
        self, threaded_client, aio_client
    ):
        # A microsecond deadline forces the past-deadline anytime path
        # in both engines; the grid answer is deterministic.
        probe = QueryRequest(dataset="demo", a=500.0, b=700.0, timeout=1e-6)
        a = threaded_client.query(probe)
        b = aio_client.query(probe)
        assert a.status == b.status == "degraded"
        assert a.canonical_bytes() == b.canonical_bytes()
