"""End-to-end request tracing and SLO/gauge surfaces over HTTP.

Acceptance for the telemetry tentpole: a served query whose client runs
under a trace scope must yield ONE span tree — ``client.query`` at the
root, the server's ``server.request`` under it (stitched via the
``X-BRS-Trace`` header), ``serve.query`` under that, and solver spans
below — all in the same trace file.
"""

from __future__ import annotations

import pytest

from repro.datasets.registry import scalability_dataset
from repro.obs.trace import Tracer, span_tree, trace_scope
from repro.serve.client import ServeClient
from repro.serve.executor import ServeEngine
from repro.serve.model import QueryRequest
from repro.serve.server import BRSServer
from repro.serve.store import DatasetStore


@pytest.fixture()
def served_engine():
    data = scalability_dataset(100, seed=9)
    store = DatasetStore()
    store.add_dataset("demo", data)
    # One shared tracer: the engine records into the same sink the client
    # scope uses, so the merged stream is directly assertable.
    events = []
    tracer = Tracer(events)
    engine = ServeEngine(
        store, workers=2, shards=3, batch_window=0.002, tracer=tracer
    )
    with BRSServer(engine, port=0) as server:
        yield server, tracer, events


def _tree_and_names(events):
    tree = span_tree(events)
    name_of = {
        e["id"]: e["span"] for e in events if e.get("ev") == "enter"
    }
    return tree, name_of


def _descendants(tree, root):
    out = set()
    frontier = list(tree.get(root, []))
    while frontier:
        node = frontier.pop()
        out.add(node)
        frontier.extend(tree.get(node, []))
    return out


class TestHttpTracePropagation:
    def test_served_query_forms_one_tree(self, served_engine):
        server, tracer, events = served_engine
        client = ServeClient(server.url, timeout=30.0)
        with trace_scope(tracer):
            response = client.query(QueryRequest(dataset="demo", a=2.0, b=2.0))
        assert response.status == "ok"
        tree, name_of = _tree_and_names(events)

        client_roots = [
            i for i in tree.get(None, []) if name_of[i] == "client.query"
        ]
        assert len(client_roots) == 1
        below = _descendants(tree, client_roots[0])
        names_below = {name_of[i] for i in below}
        # HTTP accept, engine solve, and solver internals all hang off
        # the client span: one tree from client call to solver leaf.
        assert "server.request" in names_below
        assert "serve.query" in names_below
        assert "slicebrs.solve" in names_below

    def test_trace_ids_agree_across_the_hop(self, served_engine):
        server, tracer, events = served_engine
        client = ServeClient(server.url, timeout=30.0)
        with trace_scope(tracer):
            client.query(QueryRequest(dataset="demo", a=2.0, b=2.0))
        server_enter = next(
            e for e in events
            if e.get("ev") == "enter" and e.get("span") == "server.request"
        )
        assert server_enter["trace_id"] == tracer.trace_id

    def test_untraced_client_still_served_with_root_request_span(
        self, served_engine
    ):
        server, tracer, events = served_engine
        client = ServeClient(server.url, timeout=30.0)
        # No trace_scope: no header is sent, the request must still work
        # and the server records its own root span.
        response = client.query(QueryRequest(dataset="demo", a=1.5, b=1.5))
        assert response.status == "ok"
        tree, name_of = _tree_and_names(events)
        roots = [i for i in tree.get(None, []) if name_of[i] == "server.request"]
        assert roots, "server.request should be a root without a client span"

    def test_malformed_trace_header_is_ignored(self, served_engine):
        server, tracer, events = served_engine
        client = ServeClient(server.url, timeout=30.0)
        doc = client._call(
            "POST", "/v1/query",
            QueryRequest(dataset="demo", a=1.0, b=1.0).to_json(),
            extra_headers={"X-BRS-Trace": ":::not-a-context:::"},
        )
        assert doc["status"] == "ok"


class TestServeGauges:
    def test_inflight_gauge_returns_to_zero(self, served_engine):
        server, tracer, events = served_engine
        client = ServeClient(server.url, timeout=30.0)
        client.query(QueryRequest(dataset="demo", a=2.0, b=2.0))
        registry = server.engine.registry
        assert registry.gauge("brs_serve_inflight").value == 0.0
        assert registry.gauge("brs_serve_queue_depth").value == 0.0

    def test_metrics_exposition_has_slo_and_inflight(self, served_engine):
        server, tracer, events = served_engine
        client = ServeClient(server.url, timeout=30.0)
        client.query(QueryRequest(dataset="demo", a=2.0, b=2.0))
        text = client.metrics_text()
        for name in (
            "brs_serve_inflight",
            "brs_serve_queue_depth",
            "brs_slo_p50_seconds",
            "brs_slo_p99_seconds",
            "brs_slo_error_budget_burn",
            "brs_slo_healthy",
        ):
            assert name in text

    def test_healthz_and_debug_slo(self, served_engine):
        server, tracer, events = served_engine
        client = ServeClient(server.url, timeout=30.0)
        client.query(QueryRequest(dataset="demo", a=2.0, b=2.0))
        assert client.healthy()
        slo = client.debug_slo()
        assert slo["tier"] == "interactive"
        assert slo["healthy"] is True
        assert slo["counts"]["ok"] >= 1

    def test_stats_embeds_slo_snapshot(self, served_engine):
        server, tracer, events = served_engine
        client = ServeClient(server.url, timeout=30.0)
        client.query(QueryRequest(dataset="demo", a=2.0, b=2.0))
        stats = client.stats()
        assert stats["slo"]["window_requests"] >= 1
