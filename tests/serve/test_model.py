"""Tests for query normalization, cache keys, and the response model."""

import pytest

from repro.runtime.errors import InvalidQueryError
from repro.serve.model import (
    CacheKey,
    QueryRequest,
    QueryResponse,
    normalize_query,
    quantize,
)


class TestQuantize:
    def test_idempotent(self):
        for value in (1.0, 3.14159265, 1234567.89, 1e-7, 0.30000000000000004):
            assert quantize(quantize(value)) == quantize(value)

    def test_collapses_float_noise(self):
        assert quantize(0.1 + 0.2) == quantize(0.3)

    def test_keeps_human_differences(self):
        assert quantize(1.5) != quantize(1.50001)


class TestQueryRequest:
    def test_explicit_sizing_validates(self):
        QueryRequest(dataset="d", a=2.0, b=3.0).validated()

    def test_k_sizing_validates(self):
        QueryRequest(dataset="d", k=1.5, aspect=2.0).validated()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {},                                  # no rectangle at all
            {"a": 1.0},                          # half-specified
            {"a": 1.0, "b": 2.0, "k": 1.0},      # doubly specified
            {"a": -1.0, "b": 2.0},               # non-positive
            {"a": 1.0, "b": float("inf")},       # non-finite
            {"k": 1.0, "timeout": 0.0},          # non-positive deadline
            {"a": 1.0, "b": 1.0, "focus": (3.0, 1.0, 0.0, 2.0)},  # degenerate
        ],
    )
    def test_rejects_malformed(self, kwargs):
        with pytest.raises(InvalidQueryError):
            QueryRequest(dataset="d", **kwargs).validated()

    def test_rejects_missing_dataset(self):
        with pytest.raises(InvalidQueryError):
            QueryRequest(dataset="", a=1.0, b=1.0).validated()

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(InvalidQueryError, match="unknown request fields"):
            QueryRequest.from_json({"dataset": "d", "a": 1, "b": 1, "wdith": 3})

    def test_json_roundtrip(self):
        req = QueryRequest(
            dataset="d", a=2.0, b=3.0, focus=(0.0, 1.0, 0.0, 1.0), timeout=5.0
        )
        assert QueryRequest.from_json(req.to_json()) == req


class TestNormalization:
    def test_noise_maps_to_same_key(self):
        k1 = normalize_query("d", 1, "coverage", 0.1 + 0.2, 1.0)
        k2 = normalize_query("d", 1, "coverage", 0.3, 1.0)
        assert k1 == k2

    def test_version_distinguishes_keys(self):
        k1 = normalize_query("d", 1, "coverage", 1.0, 1.0)
        k2 = normalize_query("d", 2, "coverage", 1.0, 1.0)
        assert k1 != k2

    def test_focus_distinguishes_keys_but_not_groups(self):
        plain = normalize_query("d", 1, "coverage", 1.0, 2.0)
        focused = normalize_query(
            "d", 1, "coverage", 1.0, 2.0, focus=(0.0, 5.0, 0.0, 5.0)
        )
        assert plain != focused
        assert plain.group_key == focused.group_key

    def test_keys_are_hashable_identities(self):
        keys = {
            normalize_query("d", 1, "coverage", 1.0, 2.0),
            normalize_query("d", 1, "coverage", 1.0000000001, 2.0),
        }
        assert len(keys) == 1

    def test_rejects_bad_sizes(self):
        with pytest.raises(InvalidQueryError):
            normalize_query("d", 1, "coverage", 0.0, 1.0)


class TestQueryResponse:
    def _response(self, **overrides):
        base = dict(
            status="ok", dataset="d", version=1, a=1.0, b=2.0,
            center=(3.0, 4.0), score=5.0, object_ids=(1, 2, 3),
            solver_status="ok",
        )
        base.update(overrides)
        return QueryResponse(**base)

    def test_envelope_excluded_from_equality_and_bytes(self):
        fresh = self._response()
        cached = fresh.with_envelope(cached=True, batch_size=7, seconds=0.5)
        assert fresh == cached
        assert fresh.canonical_bytes() == cached.canonical_bytes()
        assert cached.cached and cached.batch_size == 7

    def test_different_cores_differ(self):
        assert (
            self._response().canonical_bytes()
            != self._response(score=6.0).canonical_bytes()
        )

    def test_json_roundtrip_preserves_core_bytes(self):
        resp = self._response(upper_bound=9.5)
        back = QueryResponse.from_json(resp.to_json())
        assert back.canonical_bytes() == resp.canonical_bytes()
        assert back == resp


class TestGroupKey:
    def test_group_key_fields(self):
        key = CacheKey("d", 3, "coverage", 1.5, 2.5)
        assert key.group_key == ("d", 3, "coverage", 1.5, 2.5)
