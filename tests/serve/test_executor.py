"""Engine tests: exactness, caching, dedup, deadlines, backpressure."""

import math

import pytest

from repro.core.naive import NaiveBRS
from repro.core.slicebrs import SliceBRS
from repro.datasets.registry import scalability_dataset
from repro.functions.reduced import reduce_over_cover
from repro.runtime.errors import InvalidQueryError
from repro.serve.cache import ResultCache
from repro.serve.executor import ServeEngine
from repro.serve.model import QueryRequest
from repro.serve.store import DatasetStore


@pytest.fixture()
def data():
    return scalability_dataset(120, seed=5)


@pytest.fixture()
def store(data):
    s = DatasetStore()
    s.add_dataset("demo", data)
    return s


@pytest.fixture()
def engine(store):
    eng = ServeEngine(store, workers=2, shards=3, batch_window=0.002)
    yield eng
    eng.close()


class TestExactness:
    @pytest.mark.parametrize("a,b", [(4.0, 6.0), (10.0, 15.0), (25.0, 40.0)])
    def test_served_equals_direct_slicebrs(self, engine, data, a, b):
        resp = engine.query(QueryRequest(dataset="demo", a=a, b=b), timeout=60)
        assert resp.status == "ok"
        direct = SliceBRS().solve(data.points, data.score_function(), a, b)
        assert resp.score == pytest.approx(direct.score, abs=1e-9)

    def test_focus_query_equals_oracle_on_the_subset(self, engine, data):
        focus = (1500.0, 8200.0, 900.0, 8700.0)
        resp = engine.query(
            QueryRequest(dataset="demo", a=900.0, b=1200.0, focus=focus),
            timeout=60,
        )
        assert resp.status == "ok"
        x_min, x_max, y_min, y_max = focus
        ids = [
            i for i, p in enumerate(data.points)
            if x_min < p.x < x_max and y_min < p.y < y_max
        ]
        sub_points = [data.points[i] for i in ids]
        sub_fn = reduce_over_cover(data.score_function(), [[i] for i in ids])
        oracle = NaiveBRS().solve(sub_points, sub_fn, 900.0, 1200.0)
        assert resp.score == pytest.approx(oracle.score, abs=1e-9)
        assert set(resp.object_ids) <= set(ids)

    def test_k_sizing_resolves_against_the_dataset(self, engine):
        resp = engine.query(QueryRequest(dataset="demo", k=0.5), timeout=60)
        assert resp.status == "ok"
        assert resp.a > 0 and resp.b > 0

    def test_response_ids_match_reported_score(self, engine, data):
        resp = engine.query(QueryRequest(dataset="demo", a=8.0, b=12.0),
                            timeout=60)
        fn = data.score_function()
        assert resp.score == pytest.approx(fn.value(resp.object_ids))


class TestCaching:
    def test_second_identical_query_is_a_byte_identical_hit(self, engine):
        req = QueryRequest(dataset="demo", a=5.0, b=7.0)
        first = engine.query(req, timeout=60)
        second = engine.query(req, timeout=60)
        assert not first.cached and second.cached
        assert first.canonical_bytes() == second.canonical_bytes()
        assert engine.cache.stats.hits == 1

    def test_float_noise_hits_the_same_entry(self, engine):
        engine.query(QueryRequest(dataset="demo", a=0.3, b=7.0), timeout=60)
        noisy = engine.query(
            QueryRequest(dataset="demo", a=0.1 + 0.2, b=7.0), timeout=60
        )
        assert noisy.cached

    def test_invalidate_bumps_version_and_misses(self, engine):
        req = QueryRequest(dataset="demo", a=5.0, b=7.0)
        first = engine.query(req, timeout=60)
        new_version = engine.invalidate("demo")
        again = engine.query(req, timeout=60)
        assert not again.cached
        assert again.version == new_version == first.version + 1
        assert len(engine.cache) == 1  # old entry purged, new one written

    def test_degraded_answers_are_never_cached(self, engine):
        req = QueryRequest(dataset="demo", a=6.0, b=9.0, timeout=1e-6)
        first = engine.query(req, timeout=60)
        second = engine.query(req, timeout=60)
        assert first.status == "degraded"
        assert second.status == "degraded"
        assert not second.cached
        assert len(engine.cache) == 0


class TestDedupAndBatching:
    def test_identical_inflight_queries_solved_once(self, store):
        # A wide batch window keeps the dispatcher asleep while all the
        # duplicates arrive, making the dedup count deterministic.
        eng = ServeEngine(store, workers=1, batch_window=0.2)
        try:
            req = QueryRequest(dataset="demo", a=5.0, b=8.0)
            futures = [eng.submit(req) for _ in range(8)]
            responses = [f.result(timeout=60) for f in futures]
            assert all(r.status == "ok" for r in responses)
            assert len({r.canonical_bytes() for r in responses}) == 1
            snap = eng.registry.snapshot()
            assert snap["brs_serve_spec_solves_total"]["value"] == 1
            assert snap["brs_serve_dedup_joins_total"]["value"] == 7
        finally:
            eng.close()

    def test_compatible_queries_share_a_batch(self, store):
        eng = ServeEngine(store, workers=1, batch_window=0.2)
        try:
            plain = QueryRequest(dataset="demo", a=5.0, b=8.0)
            focused = QueryRequest(
                dataset="demo", a=5.0, b=8.0, focus=(0.0, 5000.0, 0.0, 5000.0)
            )
            futures = [eng.submit(plain), eng.submit(focused)]
            responses = [f.result(timeout=60) for f in futures]
            assert all(r.status == "ok" for r in responses)
            assert [r.batch_size for r in responses] == [2, 2]
            assert eng.registry.snapshot()["brs_serve_batches_total"]["value"] == 1
        finally:
            eng.close()


class TestBackpressure:
    def test_overflow_is_rejected_not_queued(self, store):
        eng = ServeEngine(store, workers=1, queue_capacity=1, batch_window=0.3)
        try:
            held = eng.submit(QueryRequest(dataset="demo", a=5.0, b=8.0))
            overflow = eng.submit(QueryRequest(dataset="demo", a=6.0, b=9.0))
            rejected = overflow.result(timeout=5)
            assert rejected.status == "rejected"
            assert "admission queue full" in (rejected.error or "")
            assert held.result(timeout=60).status == "ok"
            snap = eng.registry.snapshot()
            assert snap["brs_serve_rejected_total"]["value"] == 1
        finally:
            eng.close()

    def test_cache_hits_bypass_admission(self, store):
        eng = ServeEngine(store, workers=1, queue_capacity=1, batch_window=0.3)
        try:
            warm = QueryRequest(dataset="demo", a=4.0, b=6.0)
            eng.query(warm, timeout=60)
            held = eng.submit(QueryRequest(dataset="demo", a=5.0, b=8.0))
            hit = eng.query(warm, timeout=5)  # full queue must not matter
            assert hit.cached and hit.status == "ok"
            assert held.result(timeout=60).status == "ok"
        finally:
            eng.close()


class TestDeadlines:
    def test_expired_deadline_returns_degraded_answer(self, engine, data):
        resp = engine.query(
            QueryRequest(dataset="demo", a=6.0, b=9.0, timeout=1e-6),
            timeout=60,
        )
        assert resp.status == "degraded"
        assert resp.solver_status in ("timeout", "degraded")
        assert resp.center is not None and resp.score is not None
        # Degraded answers still report honest scores.
        fn = data.score_function()
        assert resp.score == pytest.approx(fn.value(resp.object_ids))

    def test_generous_deadline_stays_exact(self, engine, data):
        resp = engine.query(
            QueryRequest(dataset="demo", a=6.0, b=9.0, timeout=120.0),
            timeout=60,
        )
        assert resp.status == "ok"
        direct = SliceBRS().solve(data.points, data.score_function(), 6.0, 9.0)
        assert resp.score == pytest.approx(direct.score, abs=1e-9)


class TestFailures:
    def test_unknown_dataset_raises_synchronously(self, engine):
        with pytest.raises(InvalidQueryError, match="unknown dataset"):
            engine.submit(QueryRequest(dataset="nope", a=1.0, b=1.0))

    def test_empty_focus_is_an_error_response(self, engine):
        resp = engine.query(
            QueryRequest(
                dataset="demo", a=5.0, b=8.0,
                focus=(-10.0, -9.0, -10.0, -9.0),
            ),
            timeout=60,
        )
        assert resp.status == "error"
        assert "no objects" in (resp.error or "")

    def test_closed_engine_refuses_work(self, store):
        eng = ServeEngine(store)
        eng.close()
        with pytest.raises(RuntimeError):
            eng.submit(QueryRequest(dataset="demo", a=1.0, b=1.0))

    def test_stats_shape(self, engine):
        engine.query(QueryRequest(dataset="demo", a=5.0, b=8.0), timeout=60)
        stats = engine.stats()
        assert stats["cache"]["misses"] >= 1
        assert stats["queue"]["capacity"] == 64
        assert stats["latency"]["count"] >= 1
        assert math.isfinite(stats["latency"]["p50_seconds"])
        assert stats["datasets"][0]["id"] == "demo"
