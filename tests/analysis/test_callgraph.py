"""Call-graph resolution: the substrate the interprocedural rules trust.

Each test builds a tiny package tree on disk and asserts on the resolved
graph, because resolution bugs here surface as silent false *negatives*
in BRS010–BRS012 — the dangerous direction for a deadlock checker.
"""

import pathlib
import textwrap

from repro.analysis.callgraph import build_callgraph, module_name_for


def write_tree(root: pathlib.Path, files: dict) -> None:
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    # every directory between root and a .py file is a package
    for rel in files:
        parent = (root / rel).parent
        while parent != root:
            init = parent / "__init__.py"
            if not init.exists():
                init.write_text("")
            parent = parent.parent


def calls_of(graph, qualname):
    return {c.raw: c for c in graph.functions[qualname].calls}


def test_module_naming_anchors_at_outermost_package(tmp_path):
    write_tree(tmp_path, {"pkg/sub/mod.py": "X = 1\n"})
    assert module_name_for(tmp_path / "pkg" / "sub" / "mod.py") == "pkg.sub.mod"
    assert module_name_for(tmp_path / "pkg" / "sub" / "__init__.py") == "pkg.sub"


def test_method_dispatch_through_inferred_attribute_types(tmp_path):
    write_tree(
        tmp_path,
        {
            "pkg/store.py": """
                class Store:
                    def read(self, key):
                        return key
                """,
            "pkg/engine.py": """
                from pkg.store import Store

                class Engine:
                    def __init__(self, store: Store):
                        self.store = store

                    def run(self, key):
                        return self.store.read(key)
                """,
        },
    )
    graph = build_callgraph(tmp_path)
    site = calls_of(graph, "pkg.engine.Engine.run")["self.store.read"]
    assert site.callee == "pkg.store.Store.read"


def test_import_aliases_resolve_to_canonical_names(tmp_path):
    write_tree(
        tmp_path,
        {
            "pkg/util.py": """
                def helper():
                    return 1
                """,
            "pkg/app.py": """
                from pkg import util as u
                from pkg.util import helper as h
                import time as clock

                def go():
                    u.helper()
                    h()
                    clock.sleep(0.1)
                """,
        },
    )
    graph = build_callgraph(tmp_path)
    calls = calls_of(graph, "pkg.app.go")
    assert calls["u.helper"].callee == "pkg.util.helper"
    assert calls["h"].callee == "pkg.util.helper"
    # Unknown calls are summarized with their canonical dotted name.
    assert calls["clock.sleep"].callee is None
    assert calls["clock.sleep"].external == "time.sleep"


def test_decorated_functions_still_resolve_and_carry_annotations(tmp_path):
    write_tree(
        tmp_path,
        {
            "pkg/mod.py": """
                import functools

                def deco(fn):
                    @functools.wraps(fn)
                    def inner(*a, **kw):
                        return fn(*a, **kw)
                    return inner

                @deco
                # brs: unbudgeted-ok
                def solve(grid):
                    return grid

                def entry():
                    return solve([])
                """,
        },
    )
    graph = build_callgraph(tmp_path)
    assert calls_of(graph, "pkg.mod.entry")["solve"].callee == "pkg.mod.solve"
    assert "unbudgeted-ok" in graph.functions["pkg.mod.solve"].annotations


def test_function_references_become_ref_edges(tmp_path):
    write_tree(
        tmp_path,
        {
            "pkg/engine.py": """
                import threading

                class Engine:
                    def start(self):
                        t = threading.Thread(target=self._loop)
                        t.start()

                    def _loop(self):
                        pass
                """,
        },
    )
    graph = build_callgraph(tmp_path)
    refs = [
        c for c in graph.functions["pkg.engine.Engine.start"].calls
        if c.kind == "ref"
    ]
    assert [r.callee for r in refs] == ["pkg.engine.Engine._loop"]


def test_lock_identity_and_held_locks_at_call_sites(tmp_path):
    write_tree(
        tmp_path,
        {
            "pkg/mod.py": """
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def poke(self):
                        with self._lock:
                            self.helper()

                    def helper(self):
                        pass
                """,
        },
    )
    graph = build_callgraph(tmp_path)
    poke = graph.functions["pkg.mod.Box.poke"]
    assert [a.lock_id for a in poke.acquires] == ["pkg.mod.Box._lock"]
    site = {c.raw: c for c in poke.calls}["self.helper"]
    assert site.held_locks == ("pkg.mod.Box._lock",)
    assert "_lock" in graph.classes["pkg.mod.Box"].lock_attrs


def test_unknown_method_calls_keep_receiver_for_heuristics(tmp_path):
    write_tree(
        tmp_path,
        {
            "pkg/mod.py": """
                def drain(queue):
                    return queue.get()
                """,
        },
    )
    graph = build_callgraph(tmp_path)
    site = calls_of(graph, "pkg.mod.drain")["queue.get"]
    assert site.callee is None
    assert site.receiver == "queue"


def test_graph_json_dump_shape(tmp_path):
    write_tree(
        tmp_path,
        {
            "pkg/mod.py": """
                import threading

                class Box:
                    def __init__(self):
                        self._lock = threading.Lock()

                    def poke(self):
                        with self._lock:
                            pass
                """,
        },
    )
    payload = build_callgraph(tmp_path).to_json()
    assert payload["modules"]["pkg.mod"] == "pkg/mod.py"
    node = payload["functions"]["pkg.mod.Box.poke"]
    assert node["acquires"][0]["lock"] == "pkg.mod.Box._lock"
    assert payload["classes"]["pkg.mod.Box"]["lock_attrs"] == ["_lock"]
