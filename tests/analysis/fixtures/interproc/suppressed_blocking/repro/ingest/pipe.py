"""Fixture: the BRS011 pattern silenced by a line-level suppression."""
import threading

from repro.ingest.wal import LogWriter


class Pipe:
    def __init__(self, writer: LogWriter) -> None:
        self._lock = threading.Lock()
        self.writer = writer

    def append(self, data):
        with self._lock:
            self.writer.append(data)  # brs: noqa[BRS011]
