"""Fixture: only ever acquires cache under store (canonical order)."""
import threading

from repro.serve.cache import ResultCache


class DatasetStore:
    def __init__(self, cache: ResultCache) -> None:
        self._lock = threading.Lock()
        self._cache = cache
        self._data = {}

    def install(self, key, value):
        with self._lock:
            self._data[key] = value
            self._cache.invalidate(key)

    def read(self, key):
        with self._lock:
            return self._data.get(key)
