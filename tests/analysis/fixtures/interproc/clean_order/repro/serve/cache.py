"""Fixture: reads the store outside its own critical section."""
import threading


class ResultCache:
    def __init__(self, store=None) -> None:
        self._lock = threading.Lock()
        self._store = store
        self._entries = {}

    def invalidate(self, key):
        with self._lock:
            self._entries.pop(key, None)

    def refresh(self, store: "DatasetStore", key):
        value = store.read(key)
        with self._lock:
            self._entries[key] = value


from repro.serve.store import DatasetStore  # noqa: E402 (fixture import cycle)
