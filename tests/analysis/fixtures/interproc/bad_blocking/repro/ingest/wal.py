"""Fixture: the blocking primitive lives two calls down."""
import os


class LogWriter:
    def __init__(self, fh) -> None:
        self._fh = fh

    def append(self, data):
        self._fh.write(data)
        self.sync()

    def sync(self):
        os.fsync(self._fh.fileno())
