"""Fixture: holds the pipeline lock across the durable append."""
import threading

from repro.ingest.wal import LogWriter


class Pipe:
    def __init__(self, writer: LogWriter) -> None:
        self._lock = threading.Lock()
        self.writer = writer

    def append(self, data):
        with self._lock:
            self.writer.append(data)
