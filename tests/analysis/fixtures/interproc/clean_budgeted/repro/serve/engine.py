"""Fixture: ServeEngine threads a budget to the solver."""
from repro.core.solver import solve


class ServeEngine:
    def submit(self, grid, budget):
        return self._run(grid, budget)

    def _run(self, grid, budget):
        return solve(grid, budget)
