"""Fixture: AsyncServeEngine dispatches to the solver with no budget check."""
from repro.core.solver import solve


class AsyncServeEngine:
    def submit_threadsafe(self, grid):
        return self._dispatch(grid)

    def _dispatch(self, grid):
        return solve(grid)
