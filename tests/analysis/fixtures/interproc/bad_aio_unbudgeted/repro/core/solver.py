"""Fixture: a solver that never consults a budget."""


def solve(grid):
    best = None
    for cell in grid:
        if best is None or cell > best:
            best = cell
    return best
