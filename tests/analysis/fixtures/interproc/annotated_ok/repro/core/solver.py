"""Fixture: a deliberately unbudgeted solver, annotated as such."""


def solve(grid):  # brs: unbudgeted-ok -- bounded input, O(n) scan
    best = None
    for cell in grid:
        if best is None or cell > best:
            best = cell
    return best
