"""Fixture: stages under the lock, appends durably outside it."""
import threading

from repro.ingest.wal import LogWriter


class Pipe:
    def __init__(self, writer: LogWriter) -> None:
        self._lock = threading.Lock()
        self.writer = writer
        self._staged = []

    def append(self, data):
        with self._lock:
            self._staged.append(data)
        self.writer.append(data)
