"""Fixture: ServeEngine dispatches to the solver with no budget check."""
from repro.core.solver import solve


class ServeEngine:
    def submit(self, grid):
        return self._run(grid)

    def _run(self, grid):
        return solve(grid)
