"""Fixture: AsyncServeEngine threads a budget to the solver."""
from repro.core.solver import solve


class AsyncServeEngine:
    def submit_threadsafe(self, grid, budget):
        return self._dispatch(grid, budget)

    def _dispatch(self, grid, budget):
        return solve(grid, budget)
