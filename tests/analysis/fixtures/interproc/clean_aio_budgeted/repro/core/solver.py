"""Fixture: the solver polls its budget each step."""


def solve(grid, budget):
    best = None
    for cell in grid:
        if budget.expired():
            break
        if best is None or cell > best:
            best = cell
    return best
