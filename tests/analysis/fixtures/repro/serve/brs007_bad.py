"""BRS007 triggering fixture: blocking work while holding a serve lock."""

import time


class Engine:
    def drain(self, future):
        with self._lock:
            time.sleep(0.1)
            return future.result()

    def solve_under_lock(self, solver, points, f, a, b):
        with self._state_lock:
            return solver.solve(points, f, a, b)
