"""BRS005 triggering fixture: a bare except."""


def swallow(fn):
    try:
        return fn()
    except:  # noqa intentionally absent: this is what BRS005 flags
        return None
