"""BRS005 clean fixture: exception families are always named."""


def convert(fn):
    try:
        return fn()
    except (ValueError, KeyError):
        return None
    except Exception as exc:
        raise RuntimeError("wrapped") from exc
