"""BRS007 clean fixture: locks guard dict ops; blocking happens outside."""

import time


class Engine:
    def drain(self, future):
        with self._lock:
            pending = dict(self._pending)
            self._pending.clear()

            def later():
                # Deferred body: runs after the lock is released.
                time.sleep(0.1)

        time.sleep(0.01)
        return pending, future.result(), ", ".join(["a", "b"])
