"""BRS008 triggering fixture: off-convention metric names."""


def publish(registry):
    registry.counter("ServeRequests").inc()
    registry.gauge("depth").set(1)
    registry.histogram("brs_latency_Seconds").observe(0.1)
