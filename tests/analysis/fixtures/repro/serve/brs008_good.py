"""BRS008 clean fixture: snake_case metric names with unit suffixes."""


def publish(registry, name_for):
    registry.counter("brs_serve_requests_total").inc()
    registry.histogram("brs_serve_request_seconds").observe(0.1)
    # Dynamically built names are out of lexical reach and skipped.
    registry.counter(name_for("shard")).inc()
