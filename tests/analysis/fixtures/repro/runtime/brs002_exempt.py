"""BRS002 scope fixture: repro.runtime may read the wall clock."""

import time


def now():
    return time.time()
