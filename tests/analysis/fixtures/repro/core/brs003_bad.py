"""BRS003 triggering fixture: hidden-global and unseeded randomness."""

import random

import numpy as np


def sample():
    jitter = random.random()
    rng = random.Random()
    legacy = np.random.rand(3)
    return jitter, rng, legacy
