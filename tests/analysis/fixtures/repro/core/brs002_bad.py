"""BRS002 triggering fixture: wall-clock reads in a solver module."""

import time as clock
from datetime import datetime


def deadline_loop():
    deadline = clock.time() + 5.0
    started = datetime.now()
    return deadline, started
