"""BRS004 clean fixture: raises stay inside the BRSError taxonomy."""

from repro.runtime.errors import InternalInvariantError, InvalidQueryError


def solve(points):
    if not points:
        raise InvalidQueryError("empty instance")
    if len(points) < 0:
        raise InternalInvariantError("impossible length")
    try:
        return points[0]
    except IndexError as exc:
        raise  # re-raising a bound exception is fine
