"""BRS004 triggering fixture: off-taxonomy raises in a solver module."""


def solve(points):
    if not points:
        raise ValueError("empty instance")
    if len(points) < 0:
        raise AssertionError("impossible length")
    return points
