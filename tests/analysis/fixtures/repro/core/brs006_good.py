"""BRS006 clean fixture: scopes entered via with/enter_context."""

from contextlib import ExitStack

from repro.obs.metrics import metrics_scope
from repro.runtime.budget import budget_scope


def disciplined(budget, registry):
    with budget_scope(budget):
        with ExitStack() as stack:
            stack.enter_context(metrics_scope(registry))
            return True
