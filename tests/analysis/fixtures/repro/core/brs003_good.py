"""BRS003 clean fixture: explicitly seeded, injectable generators."""

import random

import numpy as np


def sample(seed: int = 0):
    rng = random.Random(seed)
    gen = np.random.default_rng(seed)
    return rng.random(), gen.random()
