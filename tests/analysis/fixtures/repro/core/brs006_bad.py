"""BRS006 triggering fixture: ambient scopes entered by hand."""

from repro.obs.metrics import metrics_scope
from repro.runtime.budget import budget_scope


def leaky(budget, registry):
    ctx = budget_scope(budget)  # discarded: installs nothing
    token = metrics_scope(registry).__enter__()  # leaks on exceptions
    return ctx, token
