"""BRS002 clean fixture: perf_counter durations are allowed everywhere."""

import time


def timed():
    start = time.perf_counter()
    return time.perf_counter() - start
