"""BRS009 clean fixture: vectorized kernels, noqa'd facade loop."""

import numpy as np


def slab_weights(lo, hi, weights):
    total = float(weights.sum())
    partial = weights + hi
    order = np.argsort(lo, kind="stable")
    for batch in [lo[order], hi[order]]:  # loop over batches, not elements
        total += float(batch[0])
    return total, partial


def materialize(xs, ys):
    # One-time facade materialization: deliberately per-element.
    return [
        (float(xs[i]), float(ys[i]))
        for i in range(xs.size)  # brs: noqa[BRS009] facade builds objects once
    ]
