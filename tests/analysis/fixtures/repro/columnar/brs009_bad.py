"""BRS009 triggering fixture: scalar loops inside a columnar kernel."""

import numpy as np


def slab_weights(lo, hi, weights):
    total = 0.0
    for i in range(len(weights)):
        total += weights[i]
    partial = [weights[i] for i in range(weights.size)]
    for j in range(lo.shape[0]):
        partial[j] += hi[j]
    squares = np.vectorize(lambda w: w * w)(weights)
    return total, partial, squares
