"""BRS001 clean fixture: strict comparisons, or non-containment names."""


class Rect:
    def contains_point(self, p):
        # Strict comparisons implement the open-rectangle semantics.
        return self.x_min < p.x < self.x_max and self.y_min < p.y < self.y_max

    def clamp(self, x):
        # '<=' on a coordinate is fine outside containment predicates.
        return self.x_min if x <= self.x_min else x
