"""BRS001 triggering fixture: boundary-inclusive containment comparisons."""


class Rect:
    def contains_point(self, p):
        # Both comparisons are boundary-inclusive on coordinates.
        return self.x_min <= p.x and p.y >= self.y_min

    def point_inside(self, x, y):
        return x == self.x_max
