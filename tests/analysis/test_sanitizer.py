"""The runtime lock sanitizer: inversions, stats, witness, overhead.

The inversion tests are deterministic by construction — the two opposing
acquisition orders run *sequentially* (thread two starts after thread
one finished), so the order graph always sees A->B before B->A, with no
dependence on scheduling.
"""

import json
import threading
import time

import pytest

from repro.analysis.sanitizer import (
    LockOrderSanitizer,
    SanitizedLock,
    instrument_locks,
    render_lock_summary,
    summarize_witness,
)


def make_pair(san):
    return SanitizedLock(san, "lock-A"), SanitizedLock(san, "lock-B")


def run_thread(fn):
    t = threading.Thread(target=fn)
    t.start()
    t.join()


def test_two_thread_inversion_detected_deterministically():
    san = LockOrderSanitizer()
    a, b = make_pair(san)

    def order_ab():
        with a:
            with b:
                pass

    def order_ba():
        with b:
            with a:
                pass

    run_thread(order_ab)
    run_thread(order_ba)  # starts only after order_ab finished
    assert not san.clean
    (inv,) = san.inversions
    assert {inv.first, inv.second} == {"lock-A", "lock-B"}
    assert inv.thread != inv.prior_thread


def test_consistent_order_stays_clean():
    san = LockOrderSanitizer()
    a, b = make_pair(san)

    def ordered():
        with a:
            with b:
                pass

    run_thread(ordered)
    run_thread(ordered)
    assert san.clean
    assert san.stats["lock-A"].acquires == 2
    # The observed graph has exactly the one edge, no reverse.
    edges = {(e["held"], e["acquired"]) for e in san.edges()}
    assert edges == {("lock-A", "lock-B")}


def test_rlock_reentry_is_not_an_ordering_edge():
    san = LockOrderSanitizer()
    r = SanitizedLock(san, "lock-R", reentrant=True)
    with r:
        with r:  # re-entry: no self-edge, still balanced
            pass
    assert san.clean
    assert san.edges() == []
    assert san.stats["lock-R"].acquires == 1


def test_long_hold_reported():
    san = LockOrderSanitizer(long_hold_s=0.01)
    lock = SanitizedLock(san, "slow-lock")
    with lock:
        time.sleep(0.02)
    assert san.long_holds
    assert san.long_holds[0]["lock"] == "slow-lock"


def test_instrument_locks_wraps_only_project_locks(tmp_path):
    mod = tmp_path / "proj_mod.py"
    mod.write_text(
        "import threading\n"
        "def make():\n"
        "    return threading.Lock()\n"
    )
    import importlib.util

    spec = importlib.util.spec_from_file_location("proj_mod", mod)
    proj = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(proj)

    with instrument_locks(only_under=tmp_path) as san:
        inside = proj.make()  # created by a file under only_under
        outside = threading.Lock()  # created by this test file
    assert isinstance(inside, SanitizedLock)
    assert inside.name.startswith("proj_mod.py:")
    assert not isinstance(outside, SanitizedLock)
    with inside:
        pass
    assert san.stats[inside.name].acquires == 1
    # The patch is reverted on exit.
    assert not isinstance(threading.Lock(), SanitizedLock)


def test_witness_round_trip_and_rendering(tmp_path):
    san = LockOrderSanitizer()
    a, b = make_pair(san)

    def order_ab():
        with a:
            with b:
                pass

    def order_ba():
        with b:
            with a:
                pass

    run_thread(order_ab)
    run_thread(order_ba)
    path = tmp_path / "witness.jsonl"
    san.write_witness(path)

    rows = [json.loads(line) for line in path.read_text().splitlines()]
    assert {r["kind"] for r in rows} >= {"stats", "edge", "inversion"}

    summary = summarize_witness(path)
    assert summary["clean"] is False
    assert summary["locks"]["lock-A"]["acquires"] == 2
    rendered = render_lock_summary(summary)
    assert "lock-A" in rendered
    assert "LOCK-ORDER INVERSIONS" in rendered


def test_witness_rejects_malformed_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind": "stats"\n')
    with pytest.raises(ValueError):
        summarize_witness(path)


def test_overhead_smoke():
    """Sanitized locks stay cheap when lock ops are a small fraction.

    Compute-dominated workload (the serve-path shape): 20 lock round
    trips around ~2e5 arithmetic steps.  Samples for the two locks are
    interleaved and min-of-N timed so scheduler noise and clock drift
    hit both sides equally; the gate is a loose smoke bound (a broken
    sanitizer costs integer multiples, not percent).
    """

    def workload(lock):
        total = 0
        for _ in range(20):
            with lock:
                total += 1
            for i in range(10_000):
                total += i
        return total

    def timed(lock):
        start = time.perf_counter()
        workload(lock)
        return time.perf_counter() - start

    plain_lock = threading.Lock()
    sanitized_lock = SanitizedLock(LockOrderSanitizer(), "bench-lock")
    timed(plain_lock), timed(sanitized_lock)  # warm-up
    plain_times, sanitized_times = [], []
    for _ in range(9):
        plain_times.append(timed(plain_lock))
        sanitized_times.append(timed(sanitized_lock))
    plain, sanitized = min(plain_times), min(sanitized_times)
    assert sanitized <= plain * 1.25, (
        f"sanitizer overhead {sanitized / plain - 1:.1%} exceeds 25%"
    )
