"""Engine mechanics: suppressions, baselines, fingerprints, discovery."""

import json
import pathlib

import pytest

from repro.analysis.baseline import BASELINE_VERSION, Baseline, fingerprint
from repro.analysis.engine import LintEngine
from repro.analysis.rules import default_rules
from repro.analysis.suppressions import parse_suppressions


def lint_source(tmp_path, source, relpath="repro/core/mod.py", baseline=None):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source)
    engine = LintEngine(default_rules(tmp_path), root=tmp_path, excludes=())
    return engine.lint_paths([path], baseline=baseline)


BAD_RAISE = "def solve(x):\n    raise ValueError('bad')\n"


# -- suppressions --------------------------------------------------------


def test_line_noqa_suppresses_named_rule(tmp_path):
    report = lint_source(
        tmp_path,
        "def solve(x):\n    raise ValueError('bad')  # brs: noqa[BRS004]\n",
    )
    assert report.findings == []
    assert report.suppressed_count == 1


def test_line_noqa_other_rule_does_not_suppress(tmp_path):
    report = lint_source(
        tmp_path,
        "def solve(x):\n    raise ValueError('bad')  # brs: noqa[BRS001]\n",
    )
    assert [f.rule for f in report.findings] == ["BRS004"]


def test_bare_line_noqa_suppresses_every_rule(tmp_path):
    report = lint_source(
        tmp_path,
        "def solve(x):\n    raise ValueError('bad')  # brs: noqa\n",
    )
    assert report.findings == []
    assert report.suppressed_count == 1


def test_file_level_noqa(tmp_path):
    report = lint_source(
        tmp_path,
        "# brs: noqa-file[BRS004]\n" + BAD_RAISE,
    )
    assert report.findings == []
    assert report.suppressed_count == 1


def test_bare_file_level_noqa_is_ignored(tmp_path):
    # Blanket-exempting a file from all rules is deliberately unsupported.
    report = lint_source(tmp_path, "# brs: noqa-file\n" + BAD_RAISE)
    assert [f.rule for f in report.findings] == ["BRS004"]


def test_noqa_inside_string_literal_is_inert(tmp_path):
    report = lint_source(
        tmp_path,
        "s = 'brs: noqa[BRS004]'\n" + BAD_RAISE,
    )
    assert [f.rule for f in report.findings] == ["BRS004"]


def test_parse_suppressions_comma_list():
    idx = parse_suppressions("x = 1  # brs: noqa[BRS001, BRS004]\n")
    assert idx.is_suppressed("BRS001", 1)
    assert idx.is_suppressed("BRS004", 1)
    assert not idx.is_suppressed("BRS002", 1)
    assert not idx.is_suppressed("BRS001", 2)


# -- baseline ------------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    report = lint_source(tmp_path, BAD_RAISE)
    assert len(report.findings) == 1

    baseline = Baseline.from_findings(report.findings)
    baseline_path = tmp_path / "baseline.json"
    baseline.save(baseline_path)

    reloaded = Baseline.load(baseline_path)
    report2 = lint_source(tmp_path, BAD_RAISE, baseline=reloaded)
    assert report2.findings == []
    assert len(report2.baselined) == 1
    assert report2.clean
    assert report2.stale_baseline == []


def test_baseline_is_line_number_independent(tmp_path):
    report = lint_source(tmp_path, BAD_RAISE)
    baseline = Baseline.from_findings(report.findings)

    # Prepending a docstring moves the finding but must not churn it.
    shifted = '"""Docstring pushed above."""\n\n\n' + BAD_RAISE
    report2 = lint_source(tmp_path, shifted, baseline=baseline)
    assert report2.findings == []
    assert len(report2.baselined) == 1


def test_fixed_finding_goes_stale(tmp_path):
    report = lint_source(tmp_path, BAD_RAISE)
    baseline = Baseline.from_findings(report.findings)

    fixed = "def solve(x):\n    return x\n"
    report2 = lint_source(tmp_path, fixed, baseline=baseline)
    assert report2.findings == []
    assert len(report2.stale_baseline) == 1


def test_duplicate_lines_get_distinct_fingerprints(tmp_path):
    two = (
        "def solve(x):\n"
        "    raise ValueError('bad')\n"
        "    raise ValueError('bad')\n"
    )
    report = lint_source(tmp_path, two)
    fps = [f.fingerprint for f in report.findings]
    assert len(fps) == 2 and len(set(fps)) == 2

    # Baselining the first occurrence still surfaces the second.
    baseline = Baseline.from_findings(report.findings[:1])
    report2 = lint_source(tmp_path, two, baseline=baseline)
    assert len(report2.findings) == 1
    assert len(report2.baselined) == 1


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError):
        Baseline.load(path)


def test_baseline_missing_file_is_empty(tmp_path):
    assert len(Baseline.load(tmp_path / "absent.json")) == 0


def test_fingerprint_normalizes_whitespace():
    a = fingerprint("BRS004", "p.py", "raise  ValueError('x')", 0)
    b = fingerprint("BRS004", "p.py", "raise ValueError('x')", 0)
    assert a == b
    assert a != fingerprint("BRS004", "p.py", "raise ValueError('x')", 1)
    assert a != fingerprint("BRS001", "p.py", "raise ValueError('x')", 0)


# -- discovery and parse errors ------------------------------------------


def test_syntax_error_is_reported_and_fails(tmp_path):
    report = lint_source(tmp_path, "def broken(:\n")
    assert report.findings == []
    assert len(report.parse_errors) == 1
    assert not report.clean


def test_excludes_skip_matching_paths(tmp_path):
    path = tmp_path / "repro" / "core" / "mod.py"
    path.parent.mkdir(parents=True)
    path.write_text(BAD_RAISE)
    engine = LintEngine(
        default_rules(tmp_path), root=tmp_path, excludes=("repro/core",)
    )
    report = engine.lint_paths([tmp_path])
    assert report.files_scanned == 0


def test_discover_missing_path_raises(tmp_path):
    engine = LintEngine(default_rules(tmp_path), root=tmp_path, excludes=())
    with pytest.raises(FileNotFoundError):
        engine.discover([tmp_path / "no-such-dir"])


def test_discover_deduplicates(tmp_path):
    path = tmp_path / "repro" / "core" / "mod.py"
    path.parent.mkdir(parents=True)
    path.write_text("x = 1\n")
    engine = LintEngine(default_rules(tmp_path), root=tmp_path, excludes=())
    found = engine.discover([tmp_path, path])
    assert found == [path]
