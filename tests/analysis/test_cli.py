"""CLI contract: exit codes, formats, baseline flags, repro-brs wiring."""

import json
import pathlib

from repro.analysis.cli import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    main as lint_main,
)
from repro.cli import main as brs_main

BAD_RAISE = "def solve(x):\n    raise ValueError('bad')\n"


def make_tree(tmp_path, source=BAD_RAISE):
    src = tmp_path / "src" / "repro" / "core" / "mod.py"
    src.parent.mkdir(parents=True)
    src.write_text(source)
    return src


def run(tmp_path, *extra):
    return lint_main(["src", "--root", str(tmp_path), *extra])


def test_findings_exit_code(tmp_path, capsys):
    make_tree(tmp_path)
    assert run(tmp_path) == EXIT_FINDINGS
    out = capsys.readouterr().out
    assert "BRS004" in out and "1 finding(s)" in out


def test_clean_exit_code(tmp_path, capsys):
    make_tree(tmp_path, "def solve(x):\n    return x\n")
    assert run(tmp_path) == EXIT_CLEAN
    assert "0 finding(s)" in capsys.readouterr().out


def test_unknown_rule_is_usage_error(tmp_path, capsys):
    make_tree(tmp_path)
    assert run(tmp_path, "--select", "BRS999") == EXIT_USAGE
    assert "unknown rule" in capsys.readouterr().err


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert run(tmp_path) == EXIT_USAGE
    assert "no such file" in capsys.readouterr().err


def test_select_limits_rules(tmp_path):
    make_tree(tmp_path)
    assert run(tmp_path, "--select", "BRS002") == EXIT_CLEAN


def test_json_format_and_output_file(tmp_path, capsys):
    make_tree(tmp_path)
    out_file = tmp_path / "lint.json"
    code = run(tmp_path, "--format", "json", "--output", str(out_file))
    assert code == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["findings"] == 1
    assert payload["findings"][0]["rule"] == "BRS004"
    assert json.loads(out_file.read_text()) == payload


def test_update_baseline_then_clean(tmp_path, capsys):
    make_tree(tmp_path)
    assert run(tmp_path, "--update-baseline") == EXIT_CLEAN
    baseline = json.loads((tmp_path / ".brs-lint-baseline.json").read_text())
    assert len(baseline["findings"]) == 1

    capsys.readouterr()
    assert run(tmp_path) == EXIT_CLEAN
    assert "1 baselined" in capsys.readouterr().out

    # --no-baseline surfaces the grandfathered finding again.
    assert run(tmp_path, "--no-baseline") == EXIT_FINDINGS


def test_malformed_baseline_is_usage_error(tmp_path, capsys):
    make_tree(tmp_path)
    (tmp_path / ".brs-lint-baseline.json").write_text("{not json")
    assert run(tmp_path) == EXIT_USAGE
    assert "baseline" in capsys.readouterr().err


def test_list_rules(capsys):
    assert lint_main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule_id in ("BRS001", "BRS004", "BRS008"):
        assert rule_id in out


def test_repro_brs_lint_subcommand_passthrough(tmp_path, capsys):
    # The umbrella CLI hands everything after `lint` to the linter,
    # including leading options.
    make_tree(tmp_path)
    code = brs_main(["lint", "src", "--root", str(tmp_path), "--format", "json"])
    assert code == EXIT_FINDINGS
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["findings"] == 1

    assert brs_main(["lint", "--list-rules"]) == EXIT_CLEAN
    assert "BRS001" in capsys.readouterr().out
