"""The linter's own acceptance bar: this repository lints clean.

These tests are the executable form of the invariants the rules encode:
the real source tree has no *new* findings, the committed baseline stays
small and honest (no stale entries, no over-grandfathering), and the
fixture tree is never linted by accident.
"""

import pathlib

from repro.analysis.baseline import Baseline
from repro.analysis.cli import DEFAULT_BASELINE, run_lint
from repro.analysis.engine import DEFAULT_EXCLUDES, LintEngine
from repro.analysis.rules import default_rules

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

#: The ratchet: the baseline may only shrink from here.
MAX_BASELINE_ENTRIES = 10


def committed_baseline():
    return Baseline.load(REPO_ROOT / DEFAULT_BASELINE)


def test_source_tree_lints_clean():
    report = run_lint(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")],
        root=REPO_ROOT,
        baseline=committed_baseline(),
    )
    details = "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in report.findings
    )
    assert report.clean, f"new lint findings:\n{details}"
    assert report.files_scanned > 100


def test_baseline_is_small_and_not_stale():
    baseline = committed_baseline()
    assert len(baseline) <= MAX_BASELINE_ENTRIES

    report = run_lint(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")],
        root=REPO_ROOT,
        baseline=baseline,
    )
    # Every entry still matches a live finding (the ratchet is honest)
    # and every entry was actually needed.
    assert report.stale_baseline == []
    assert len(report.baselined) == len(baseline)


def test_interprocedural_rules_clean_on_repo():
    """The whole-program pass (BRS010–BRS012) reports nothing new.

    Deliberate exceptions (the WAL append under the pipeline lock) are
    suppressed in-source with a justification comment, not grandfathered
    into the baseline — the baseline stays the 4 ``contains_rect``
    comparisons.
    """
    report = run_lint(
        [str(REPO_ROOT / "src"), str(REPO_ROOT / "tests")],
        root=REPO_ROOT,
        baseline=committed_baseline(),
        interprocedural=True,
    )
    inter = [
        f for f in report.findings if f.rule in ("BRS010", "BRS011", "BRS012")
    ]
    details = "\n".join(
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in inter
    )
    assert not inter, f"new interprocedural findings:\n{details}"
    assert report.clean


def test_baseline_has_only_the_grandfathered_geometry_entries():
    baseline = committed_baseline()
    rules = {entry["rule"] for entry in baseline.entries.values()}
    assert rules == {"BRS001"}
    assert len(baseline) == 4


def test_fixtures_are_excluded_by_default():
    engine = LintEngine(default_rules(REPO_ROOT), root=REPO_ROOT)
    assert engine.excludes == DEFAULT_EXCLUDES
    discovered = engine.discover([REPO_ROOT / "tests" / "analysis"])
    assert discovered, "test modules themselves are still linted"
    assert not any("fixtures" in p.as_posix() for p in discovered)
