"""Per-rule fixture tests: every rule fires on its bad fixture and stays
quiet on its clean one.

The fixture tree mirrors the ``repro/<subpackage>/`` layout so the rules'
path-scope predicates apply exactly as they do on the real source tree.
Fixtures are excluded from normal lint runs (``DEFAULT_EXCLUDES``); these
tests lint them deliberately with the exclusion lifted.
"""

import pathlib

import pytest

from repro.analysis.engine import LintEngine
from repro.analysis.rules import RULE_CLASSES, default_rules

FIXTURES = pathlib.Path(__file__).parent / "fixtures"


def lint_fixture(relpath: str):
    """Lint one fixture file, rooted at the fixture tree."""
    engine = LintEngine(default_rules(FIXTURES), root=FIXTURES, excludes=())
    report = engine.lint_paths([FIXTURES / relpath])
    assert not report.parse_errors, report.parse_errors
    return report


def fired_rules(relpath: str):
    return {f.rule for f in lint_fixture(relpath).findings}


#: rule id -> (triggering fixture, clean fixture), both relative paths.
RULE_FIXTURES = {
    "BRS001": ("repro/geometry/brs001_bad.py", "repro/geometry/brs001_good.py"),
    "BRS002": ("repro/core/brs002_bad.py", "repro/core/brs002_good.py"),
    "BRS003": ("repro/core/brs003_bad.py", "repro/core/brs003_good.py"),
    "BRS004": ("repro/core/brs004_bad.py", "repro/core/brs004_good.py"),
    "BRS005": ("repro/serve/brs005_bad.py", "repro/serve/brs005_good.py"),
    "BRS006": ("repro/core/brs006_bad.py", "repro/core/brs006_good.py"),
    "BRS007": ("repro/serve/brs007_bad.py", "repro/serve/brs007_good.py"),
    "BRS008": ("repro/serve/brs008_bad.py", "repro/serve/brs008_good.py"),
    "BRS009": ("repro/columnar/brs009_bad.py", "repro/columnar/brs009_good.py"),
}


def test_every_shipped_rule_has_fixtures():
    assert set(RULE_FIXTURES) == {cls.id for cls in RULE_CLASSES}


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_fires_on_bad_fixture(rule_id):
    bad, _ = RULE_FIXTURES[rule_id]
    assert rule_id in fired_rules(bad)


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_quiet_on_clean_fixture(rule_id):
    _, good = RULE_FIXTURES[rule_id]
    assert rule_id not in fired_rules(good)


def test_brs001_counts_each_inclusive_comparison():
    findings = [
        f for f in lint_fixture("repro/geometry/brs001_bad.py").findings
        if f.rule == "BRS001"
    ]
    # <=, >= on the first predicate plus == on the second.
    assert len(findings) == 3


def test_brs002_sees_through_import_aliases():
    messages = [
        f.message for f in lint_fixture("repro/core/brs002_bad.py").findings
        if f.rule == "BRS002"
    ]
    # `import time as clock` and `from datetime import datetime` both
    # canonicalize; aliasing cannot dodge the rule.
    assert any("time.time()" in m for m in messages)
    assert any("datetime.now()" in m for m in messages)


def test_brs002_allows_wall_clock_in_runtime_layer():
    assert "BRS002" not in fired_rules("repro/runtime/brs002_exempt.py")


def test_brs003_flags_all_three_forms():
    messages = [
        f.message for f in lint_fixture("repro/core/brs003_bad.py").findings
        if f.rule == "BRS003"
    ]
    assert len(messages) == 3
    assert any("module-global" in m for m in messages)
    assert any("unseeded random.Random()" in m for m in messages)
    assert any("legacy numpy.random.rand()" in m for m in messages)


def test_brs007_flags_solver_entry_and_blocking_calls():
    messages = [
        f.message for f in lint_fixture("repro/serve/brs007_bad.py").findings
        if f.rule == "BRS007"
    ]
    assert any("solver entry point solve()" in m for m in messages)
    assert any("sleep()" in m for m in messages)
    assert any("result()" in m for m in messages)


def test_brs008_documented_name_check(tmp_path):
    # With a doc present, snake_case names missing from it are findings.
    doc = tmp_path / "docs" / "observability.md"
    doc.parent.mkdir()
    doc.write_text(
        "| `brs_serve_requests_total` | counter |\n"
        "| `brs_serve_{batches,solves}_total` | counter |\n"
    )
    src = tmp_path / "repro" / "serve" / "mod.py"
    src.parent.mkdir(parents=True)
    src.write_text(
        "def publish(registry):\n"
        "    registry.counter('brs_serve_requests_total').inc()\n"
        "    registry.counter('brs_serve_batches_total').inc()\n"
        "    registry.counter('brs_serve_unheard_of_total').inc()\n"
    )
    engine = LintEngine(default_rules(tmp_path), root=tmp_path, excludes=())
    report = engine.lint_paths([src])
    undocumented = [f for f in report.findings if f.rule == "BRS008"]
    assert len(undocumented) == 1
    assert "brs_serve_unheard_of_total" in undocumented[0].message


def test_brs009_flags_each_scalar_loop_form():
    findings = [
        f for f in lint_fixture("repro/columnar/brs009_bad.py").findings
        if f.rule == "BRS009"
    ]
    # range(len), range(.size) comprehension, range(.shape[0]), np.vectorize.
    assert len(findings) == 4
    messages = [f.message for f in findings]
    assert any("range(len(...))" in m for m in messages)
    assert any("range(<array>.size)" in m for m in messages)
    assert any("range(<array>.shape[...])" in m for m in messages)
    assert any("numpy.vectorize" in m for m in messages)


def test_brs009_scoped_to_columnar():
    # The same scalar loop outside repro/columnar/ is not this rule's
    # business: object-path solvers may loop.
    engine = LintEngine(default_rules(FIXTURES), root=FIXTURES, excludes=())
    target = FIXTURES / "repro" / "columnar" / "brs009_bad.py"
    outside = [
        r for r in default_rules(FIXTURES)
        if r.id == "BRS009" and r.applies_to("repro/core/slicebrs.py")
    ]
    assert not outside
    assert any(
        r.applies_to("repro/columnar/kernels.py")
        for r in default_rules(FIXTURES) if r.id == "BRS009"
    )
    assert target.exists()
