"""BRS010–BRS012 on the committed fixture trees.

Every rule has a fixture where it fires and one where it stays silent
(the acceptance bar from docs/static-analysis.md), plus the suppression
round-trip and the merge into the normal lint report/baseline ratchet.
"""

import pathlib

import pytest

from repro.analysis.baseline import Baseline
from repro.analysis.callgraph import CallSite
from repro.analysis.cli import run_lint
from repro.analysis.concurrency import blocking_reason, run_interprocedural

FIXTURES = (
    pathlib.Path(__file__).resolve().parent / "fixtures" / "interproc"
)


def run_tree(name):
    return run_interprocedural(FIXTURES / name)


@pytest.mark.parametrize(
    "tree,expected_rules",
    [
        ("bad_cycle", ["BRS010"]),
        ("clean_order", []),
        ("bad_blocking", ["BRS011"]),
        ("clean_blocking", []),
        ("bad_unbudgeted", ["BRS012"]),
        ("clean_budgeted", []),
        ("bad_aio_unbudgeted", ["BRS012"]),
        ("clean_aio_budgeted", []),
        ("annotated_ok", []),
    ],
)
def test_rule_fires_and_stays_silent(tree, expected_rules):
    findings, _, _ = run_tree(tree)
    assert [f.rule for f in findings] == expected_rules


def test_cross_module_cycle_reports_both_witness_paths():
    findings, _, payload = run_tree("bad_cycle")
    (finding,) = findings
    assert finding.rule == "BRS010"
    # Both lock identities and both witness legs appear in the message.
    assert "repro.serve.store.DatasetStore._lock" in finding.message
    assert "repro.serve.cache.ResultCache._lock" in finding.message
    assert "[1]" in finding.message and "[2]" in finding.message
    # The lock graph dump carries both edges of the cycle.
    pairs = {
        (e["held"], e["acquired"]) for e in payload["lock_graph"]["edges"]
    }
    a = "repro.serve.store.DatasetStore._lock"
    b = "repro.serve.cache.ResultCache._lock"
    assert (a, b) in pairs and (b, a) in pairs


def test_blocking_finding_shows_the_transitive_chain():
    findings, _, _ = run_tree("bad_blocking")
    (finding,) = findings
    assert finding.path == "repro/ingest/pipe.py"
    assert "repro.ingest.wal.LogWriter.append" in finding.message
    assert "os.fsync" in finding.message
    # The chain goes through sync(): the blocking is two calls away.
    assert "LogWriter.sync" in finding.message


def test_unbudgeted_finding_names_entry_and_path():
    findings, _, _ = run_tree("bad_unbudgeted")
    (finding,) = findings
    assert finding.path == "repro/core/solver.py"
    assert "repro.serve.engine.ServeEngine.submit" in finding.message
    assert "unbudgeted-ok" in finding.message


def test_suppression_round_trip():
    findings, suppressed, _ = run_tree("suppressed_blocking")
    assert findings == []
    assert suppressed == 1


def test_findings_merge_into_lint_report_and_baseline():
    root = FIXTURES / "bad_blocking"
    report = run_lint(["repro"], root=root, interprocedural=True)
    assert [f.rule for f in report.findings] == ["BRS011"]
    assert not report.clean

    # Grandfather it: the ratchet then reports it as baselined, and the
    # entry is live (not stale).
    baseline = Baseline.from_findings(report.findings)
    again = run_lint(
        ["repro"], root=root, baseline=baseline, interprocedural=True
    )
    assert again.clean
    assert [f.rule for f in again.baselined] == ["BRS011"]
    assert again.stale_baseline == []


def test_graph_out_writes_lock_graph(tmp_path):
    out = tmp_path / "graph.json"
    report = run_lint(
        ["repro"],
        root=FIXTURES / "bad_cycle",
        interprocedural=True,
        graph_out=out,
    )
    assert not report.clean
    import json

    payload = json.loads(out.read_text())
    assert payload["lock_graph"]["edges"]
    assert "repro.serve.store.DatasetStore.install" in payload["functions"]


def site(raw, receiver=None, external=None):
    return CallSite(
        raw=raw,
        callee=None,
        external=external,
        line=1,
        col=0,
        receiver=receiver,
    )


def test_blocking_reason_guards():
    # Unconditional primitives.
    assert blocking_reason(site("time.sleep", external="time.sleep"))
    assert blocking_reason(site("os.fsync", external="os.fsync"))
    # join: only thread/worker-ish receivers, never path or string joins.
    assert blocking_reason(site("self._worker.join", receiver="self._worker"))
    assert not blocking_reason(site("os.path.join", external="os.path.join"))
    assert not blocking_reason(site("sep.join", receiver="sep"))
    # queue get/put only on queue-ish receivers.
    assert blocking_reason(site("self._queue.get", receiver="self._queue"))
    assert not blocking_reason(site("mapping.get", receiver="mapping"))
    # futures: result() on future-ish receivers only.
    assert blocking_reason(site("fut.result", receiver="fut"))
    assert not blocking_reason(site("summary.result", receiver="summary"))
