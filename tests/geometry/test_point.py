"""Tests for repro.geometry.point."""

import math

from repro.geometry.point import Point


class TestPoint:
    def test_is_tuple_like(self):
        p = Point(1.0, 2.0)
        x, y = p
        assert (x, y) == (1.0, 2.0)
        assert p == (1.0, 2.0)

    def test_hashable(self):
        assert len({Point(1, 2), Point(1, 2), Point(2, 1)}) == 2

    def test_distance_to(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == 5.0

    def test_distance_is_symmetric(self):
        p, q = Point(1.5, -2.0), Point(-3.0, 7.0)
        assert p.distance_to(q) == q.distance_to(p)

    def test_chebyshev_to(self):
        assert Point(0, 0).chebyshev_to(Point(3, -4)) == 4.0
        assert Point(2, 2).chebyshev_to(Point(2, 2)) == 0.0

    def test_chebyshev_square_containment_relation(self):
        # p inside the s x s square at q  <=>  chebyshev < s/2
        q = Point(0.0, 0.0)
        assert Point(0.4, -0.4).chebyshev_to(q) < 0.5
        assert not Point(0.5, 0.0).chebyshev_to(q) < 0.5

    def test_translated(self):
        assert Point(1, 1).translated(2, -3) == Point(3, -2)

    def test_translated_does_not_mutate(self):
        p = Point(1, 1)
        p.translated(5, 5)
        assert p == Point(1, 1)

    def test_distance_matches_hypot(self):
        p, q = Point(0.1, 0.2), Point(-1.3, 2.9)
        assert p.distance_to(q) == math.hypot(p.x - q.x, p.y - q.y)
