"""Tests for repro.geometry.rect (open-rectangle semantics)."""

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect, bounding_rect, siri_rect


class TestRectConstruction:
    def test_rejects_degenerate_width(self):
        with pytest.raises(ValueError):
            Rect(1.0, 1.0, 0.0, 2.0)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError):
            Rect(2.0, 1.0, 0.0, 2.0)

    def test_from_center(self):
        r = Rect.from_center(Point(5, 5), width=4, height=2)
        assert r.as_tuple() == (3.0, 7.0, 4.0, 6.0)

    def test_dimensions(self):
        r = Rect(0, 4, 0, 2)
        assert r.width == 4 and r.height == 2 and r.area == 8
        assert r.center == Point(2.0, 1.0)


class TestContainment:
    def test_interior_point(self):
        r = Rect(0, 2, 0, 2)
        assert r.contains_point(Point(1, 1))

    def test_boundary_point_excluded(self):
        """Definition 2: objects on the boundary are excluded."""
        r = Rect(0, 2, 0, 2)
        for p in (Point(0, 1), Point(2, 1), Point(1, 0), Point(1, 2), Point(0, 0)):
            assert not r.contains_point(p)

    def test_exterior_point(self):
        assert not Rect(0, 2, 0, 2).contains_point(Point(3, 1))

    def test_contains_rect_closed(self):
        outer = Rect(0, 4, 0, 4)
        assert outer.contains_rect(Rect(0, 4, 0, 4))
        assert outer.contains_rect(Rect(1, 2, 1, 2))
        assert not outer.contains_rect(Rect(1, 5, 1, 2))


class TestIntersection:
    def test_overlapping(self):
        assert Rect(0, 2, 0, 2).intersects(Rect(1, 3, 1, 3))

    def test_edge_touching_is_not_intersecting(self):
        """Open interiors: sharing only an edge is no intersection."""
        assert not Rect(0, 2, 0, 2).intersects(Rect(2, 4, 0, 2))
        assert not Rect(0, 2, 0, 2).intersects(Rect(0, 2, 2, 4))

    def test_disjoint(self):
        assert not Rect(0, 1, 0, 1).intersects(Rect(5, 6, 5, 6))

    def test_intersects_is_symmetric(self):
        r1, r2 = Rect(0, 3, 0, 3), Rect(2, 5, -1, 1)
        assert r1.intersects(r2) == r2.intersects(r1)

    def test_intersects_x_range(self):
        r = Rect(1, 3, 0, 1)
        assert r.intersects_x_range(2, 5)
        assert not r.intersects_x_range(3, 5)  # open extent


class TestClipping:
    def test_clipped_x(self):
        r = Rect(0, 10, 0, 1).clipped_x(2, 5)
        assert r.as_tuple() == (2, 5, 0, 1)

    def test_clip_keeps_y(self):
        r = Rect(0, 10, -3, 7).clipped_x(1, 2)
        assert (r.y_min, r.y_max) == (-3, 7)


class TestSiriRect:
    def test_centered_at_object(self):
        r = siri_rect(Point(10, 20), a=2, b=6)
        assert r.center == Point(10, 20)
        assert r.height == 2 and r.width == 6

    def test_lemma1_reciprocity(self):
        """Lemma 1: o inside rect at p  <=>  p inside rect at o."""
        o, p = Point(1.0, 2.0), Point(1.7, 1.1)
        a, b = 2.5, 1.6
        assert siri_rect(p, a, b).contains_point(o) == siri_rect(o, a, b).contains_point(p)


class TestBoundingRect:
    def test_basic(self):
        r = bounding_rect([Point(0, 0), Point(2, 3), Point(-1, 1)])
        assert r.as_tuple() == (-1, 2, 0, 3)

    def test_pad(self):
        r = bounding_rect([Point(0, 0), Point(1, 1)], pad=0.5)
        assert r.as_tuple() == (-0.5, 1.5, -0.5, 1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_rect([])

    def test_collinear_without_pad_raises(self):
        with pytest.raises(ValueError):
            bounding_rect([Point(0, 0), Point(0, 5)])
