"""Tests for arrangement cell counting (#DR of Table 4)."""

import random

from repro.geometry.arrangement import count_arrangement_cells
from repro.geometry.rect import Rect


class TestCountArrangementCells:
    def test_no_rects(self):
        assert count_arrangement_cells([]) == 1

    def test_single_rect(self):
        # One rectangle: 3 strips; middle strip has 3 cells, plus the two
        # unbounded side strips -> 2 + 3 = 5... strips: left-unbounded (1),
        # between edges (2*1+1 = 3), right-unbounded (1).
        assert count_arrangement_cells([Rect(0, 1, 0, 1)]) == 5

    def test_two_disjoint_rects(self):
        cells = count_arrangement_cells([Rect(0, 1, 0, 1), Rect(5, 6, 5, 6)])
        # strips: |1| 3 |1| 3 |1| between/around the 4 vertical edges.
        assert cells == 2 + 3 + 1 + 3

    def test_two_overlapping_rects(self):
        cells = count_arrangement_cells([Rect(0, 2, 0, 2), Rect(1, 3, 1, 3)])
        # strips between x in {0,1,2,3}: active counts 1, 2, 1.
        assert cells == 2 + 3 + 5 + 3

    def test_nested_rects(self):
        cells = count_arrangement_cells([Rect(0, 10, 0, 10), Rect(4, 6, 4, 6)])
        assert cells == 2 + 3 + 5 + 3

    def test_quadratic_worst_case_growth(self):
        """n crossing rectangles create Theta(n^2) cells (Theorem 2)."""

        def grid_instance(k: int):
            tall = [Rect(i + 0.0, i + 0.5, 0.0, 10.0) for i in range(k)]
            wide = [Rect(-5.0, 15.0, i + 0.0, i + 0.5) for i in range(k)]
            return tall + wide

        small = count_arrangement_cells(grid_instance(4))
        large = count_arrangement_cells(grid_instance(8))
        # Doubling n should roughly quadruple the cells.
        assert large > 3 * small

    def test_matches_bruteforce_on_random_instances(self):
        rng = random.Random(3)
        for _ in range(20):
            rects = []
            for _ in range(rng.randint(1, 8)):
                x = rng.uniform(0, 8)
                y = rng.uniform(0, 8)
                rects.append(Rect(x, x + rng.uniform(0.5, 3), y, y + rng.uniform(0.5, 3)))
            assert count_arrangement_cells(rects) == _bruteforce_cells(rects)


def _bruteforce_cells(rects):
    """Count cells by probing one interior point per elementary box."""
    xs = sorted({r.x_min for r in rects} | {r.x_max for r in rects})
    cells = 2  # unbounded side strips
    for lo, hi in zip(xs, xs[1:]):
        mid = (lo + hi) / 2
        active_edges = sorted(
            {r.y_min for r in rects if r.x_min <= lo and hi <= r.x_max}
            | {r.y_max for r in rects if r.x_min <= lo and hi <= r.x_max}
        )
        cells += len(active_edges) + 1
    return cells
