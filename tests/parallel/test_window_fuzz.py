"""Seeded fuzz for ``_window_bounds``: the decomposition's exactness core.

The partitioned solver is exact *because* the window bounds satisfy
three invariants (documented on :func:`repro.core.partitioned.
_window_bounds` itself):

1. coverage — the first window starts at ``x_lo`` and the last ends at
   ``x_hi``, with window starts/ends non-decreasing in between;
2. overlap — consecutive windows overlap by at least ``b``, so the
   object neighbourhood of any candidate center lies wholly inside some
   window;
3. progress — the responsibility stride ``span / n_windows`` stays
   strictly wider than ``b`` (no window degenerates into pure overlap).

Hundreds of seeded adversarial ``span/b/n_parts`` combinations exercise
the branch structure: tiny spans, ``b`` wider than the whole span,
``span/b`` sitting just above/below an integer (the ratio family that
broke an earlier truncation-based implementation), and extreme scales.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.partitioned import _window_bounds

#: Relative tolerance for float comparisons at arbitrary magnitudes.
REL = 1e-9


def assert_invariants(x_lo: float, x_hi: float, n_parts: int, b: float) -> None:
    windows = _window_bounds(x_lo, x_hi, n_parts, b)
    span = x_hi - x_lo
    scale = max(abs(x_lo), abs(x_hi), b, 1.0)
    tol = REL * scale

    assert windows, "decomposition returned no windows"
    assert len(windows) <= max(1, n_parts)
    # Invariant 1: exact coverage of [x_lo, x_hi], monotone bounds.
    assert windows[0][0] == pytest.approx(x_lo, abs=tol)
    assert windows[-1][1] == pytest.approx(x_hi, abs=tol)
    for lo, hi in windows:
        assert hi > lo - tol
    for (lo1, hi1), (lo2, hi2) in zip(windows, windows[1:]):
        assert lo2 >= lo1 - tol and hi2 >= hi1 - tol
        # Invariant 2: consecutive windows overlap by at least b.
        assert hi1 - lo2 >= b - tol, (
            f"overlap {hi1 - lo2} < b={b} for {x_lo=} {x_hi=} {n_parts=}"
        )
    if len(windows) > 1:
        # Invariant 3: the responsibility stride stays strictly wider
        # than b (the first window is not widened on its left, so raw
        # start-to-start deltas are stride - b there; measure the stride
        # the construction actually tiles by).
        stride = span / len(windows)
        assert stride > b - tol, (
            f"stride {stride} <= b={b} for {x_lo=} {x_hi=} {n_parts=}"
        )
        # Interior starts advance by exactly that stride.
        for (lo1, _), (lo2, _) in zip(windows[1:], windows[2:]):
            assert lo2 - lo1 == pytest.approx(stride, abs=tol, rel=1e-9)
        # Multi-window decompositions only happen when they are useful:
        # the span must genuinely exceed one query width.
        assert span > b - tol


def test_single_window_cases():
    assert _window_bounds(0.0, 1.0, 1, 0.1) == [(0.0, 1.0)]
    # b spans (or exceeds) the whole extent: nothing to cut.
    assert _window_bounds(0.0, 1.0, 8, 1.0) == [(0.0, 1.0)]
    assert _window_bounds(0.0, 1.0, 8, 2.5) == [(0.0, 1.0)]
    # Degenerate span.
    assert _window_bounds(3.0, 3.0, 4, 0.5) == [(3.0, 3.0)]


@pytest.mark.parametrize("n_parts", [2, 3, 5, 8, 16, 33])
@pytest.mark.parametrize("ratio_nudge", [-1e-9, 0.0, 1e-9, 1e-3])
@pytest.mark.parametrize("ratio", [1, 2, 3, 7, 16])
def test_near_integer_ratios(n_parts, ratio, ratio_nudge):
    """span/b hovering at an integer is where count reduction can break."""
    b = 1.0
    span = b * (ratio + ratio_nudge)
    assert_invariants(0.0, span, n_parts, b)


@pytest.mark.parametrize("seed", range(300))
def test_fuzz_invariants(seed):
    rng = random.Random(777_000 + seed)
    x_lo = rng.uniform(-1e6, 1e6)
    # Spans across 12 orders of magnitude, including sub-b spans.
    span = 10.0 ** rng.uniform(-6, 6)
    x_hi = x_lo + span
    # b relative to span: from negligible to several times wider.
    b = span * (10.0 ** rng.uniform(-4, 0.7))
    n_parts = rng.randint(1, 50)
    assert_invariants(x_lo, x_hi, n_parts, b)


@pytest.mark.parametrize("seed", range(100))
def test_fuzz_near_integer_random(seed):
    """Random magnitudes with span/b forced just around an integer."""
    rng = random.Random(31_337 + seed)
    b = 10.0 ** rng.uniform(-3, 3)
    k = rng.randint(1, 40)
    eps = rng.choice([-1e-12, -1e-9, 0.0, 1e-9, 1e-12]) * k
    span = b * (k + eps)
    x_lo = rng.uniform(-1e3, 1e3)
    n_parts = rng.randint(1, 50)
    assert_invariants(x_lo, x_lo + span, n_parts, b)


def test_windows_cover_every_candidate_neighbourhood():
    """Semantic spot check: every x has a window containing [x-b, x+b]
    clipped to the extent — the property the exactness proof needs."""
    x_lo, x_hi, b = 0.0, 37.3, 1.7
    windows = _window_bounds(x_lo, x_hi, 9, b)
    rng = random.Random(4242)
    for _ in range(500):
        x = rng.uniform(x_lo + b / 2, x_hi - b / 2)
        lo_need = max(x_lo, x - b / 2)
        hi_need = min(x_hi, x + b / 2)
        assert any(
            lo <= lo_need + 1e-9 and hi >= hi_need - 1e-9
            for lo, hi in windows
        ), f"no window contains the neighbourhood of x={x}"
    assert not math.isnan(sum(lo + hi for lo, hi in windows))
