"""Differential suite: parallel == serial == naive oracle, per instance.

Every seeded instance is solved three ways — the O(n^2) NaiveBRS oracle,
the serial partitioned path, and the process-pool path — and all three
must agree on the optimal score.  Instances vary layout (uniform vs
clustered), score family (coverage vs weighted sum), rectangle shape
(square through heavily skewed), and window count, because those are the
axes the decomposition and the worker protocol could get wrong.

The first :data:`FAST_SEEDS` instances run everywhere (including the CI
spawn-backend job); the remaining sweep to 40 instances is marked
``slow``.
"""

from __future__ import annotations

import random
from typing import List, Tuple

import pytest

from repro.core.naive import NaiveBRS
from repro.core.siri import objects_in_region
from repro.functions.base import SetFunction
from repro.functions.coverage import CoverageFunction
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point
from repro.parallel import solve_partitioned

FAST_SEEDS = range(8)
SLOW_SEEDS = range(8, 40)


def make_instance(
    seed: int,
) -> Tuple[List[Point], SetFunction, float, float, int]:
    """One seeded instance: ``(points, f, a, b, n_parts)``.

    Even seeds scatter points uniformly; odd seeds sample around a few
    cluster centers so some windows are dense and others nearly empty.
    Seeds alternate coverage and sum functions independently of layout.
    """
    rng = random.Random(1_000_003 * seed + 17)
    n = rng.randint(4, 60)
    if seed % 2 == 0:
        points = [
            Point(rng.uniform(0, 12), rng.uniform(0, 12)) for _ in range(n)
        ]
    else:
        centers = [
            (rng.uniform(0, 12), rng.uniform(0, 12))
            for _ in range(rng.randint(2, 4))
        ]
        points = []
        for _ in range(n):
            cx, cy = rng.choice(centers)
            points.append(
                Point(cx + rng.gauss(0, 0.7), cy + rng.gauss(0, 0.7))
            )
    fn: SetFunction
    if seed % 4 < 2:
        tags = [
            set(rng.sample("abcdefghij", rng.randint(1, 3))) for _ in range(n)
        ]
        fn = CoverageFunction(tags)
    else:
        fn = SumFunction(n, [rng.uniform(0.1, 2.0) for _ in range(n)])
    # Rectangle shapes from squares to 8:1 skews, both orientations.
    base = rng.uniform(0.6, 3.0)
    aspect = rng.choice([1.0, 2.0, 4.0, 8.0])
    if rng.random() < 0.5:
        a, b = base * aspect, base
    else:
        a, b = base, base * aspect
    return points, fn, a, b, rng.randint(2, 6)


def assert_instance_agrees(seed: int) -> None:
    points, fn, a, b, n_parts = make_instance(seed)
    oracle = NaiveBRS().solve(points, fn, a, b)
    serial = solve_partitioned(points, fn, a, b, n_parts=n_parts)
    pooled = solve_partitioned(points, fn, a, b, n_parts=n_parts, workers=2)

    assert serial.score == pytest.approx(oracle.score), f"seed {seed}: serial"
    assert pooled.score == pytest.approx(oracle.score), f"seed {seed}: pool"
    # The returned center must itself achieve the reported score — the
    # score may not come from a region the answer does not describe.
    for result in (serial, pooled):
        achieved = fn.value(objects_in_region(points, result.point, a, b))
        assert achieved == pytest.approx(result.score), f"seed {seed}: center"
        assert result.status == "ok"


@pytest.mark.parametrize("seed", FAST_SEEDS)
def test_differential_fast(seed):
    assert_instance_agrees(seed)


@pytest.mark.slow
@pytest.mark.parametrize("seed", SLOW_SEEDS)
def test_differential_sweep(seed):
    assert_instance_agrees(seed)
