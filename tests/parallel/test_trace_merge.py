"""Acceptance: a workers=2 solve merges worker spans into ONE trace.

The multiprocessing backend ships each worker's buffered span events back
with its shard result; the dispatcher grafts them under a
``parallel.shard`` span.  The merged JSONL file must therefore read as a
single trace: one meta header, every span id unique, and every
worker-side span a descendant of some ``parallel.shard`` span.
"""

from __future__ import annotations

import random
from typing import List

from repro.functions.coverage import CoverageFunction
from repro.geometry.point import Point
from repro.obs.trace import (
    JsonlTraceWriter,
    Tracer,
    read_trace,
    span_tree,
    trace_scope,
)
from repro.parallel import solve_partitioned


def _instance(n: int = 40, seed: int = 11):
    rng = random.Random(seed)
    points: List[Point] = [
        Point(rng.uniform(0, 12), rng.uniform(0, 12)) for _ in range(n)
    ]
    tags = [
        set(rng.sample("abcdefghij", rng.randint(1, 3))) for _ in range(n)
    ]
    return points, CoverageFunction(tags)


def _descendants(tree, root):
    out = set()
    frontier = list(tree.get(root, []))
    while frontier:
        node = frontier.pop()
        out.add(node)
        frontier.extend(tree.get(node, []))
    return out


class TestMergedWorkerTrace:
    def test_workers_2_yields_one_trace_with_shard_subtrees(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        points, fn = _instance()
        with JsonlTraceWriter(path) as writer:
            with trace_scope(Tracer(writer)):
                solve_partitioned(
                    points, fn, 2.0, 2.0, n_parts=4, workers=2
                )
        events = read_trace(path)

        # One trace: exactly one meta header, unique span ids.
        assert sum(1 for e in events if e.get("ev") == "meta") == 1
        enters = [e for e in events if e.get("ev") == "enter"]
        exits = [e for e in events if e.get("ev") == "exit"]
        ids = [e["id"] for e in enters]
        assert len(ids) == len(set(ids))
        assert len(enters) == len(exits)  # every span closed

        tree = span_tree(events)
        name_of = {e["id"]: e["span"] for e in enters}
        shard_ids = [i for i, n in name_of.items() if n == "parallel.shard"]
        assert len(shard_ids) == 4  # one wrapper per x-window

        # The whole file is ONE tree: a single root owns every span.
        (root,) = tree[None]
        assert name_of[root] == "parallel.solve"
        assert _descendants(tree, root) == set(ids) - {root}

        # Each shard wrapper hangs off the dispatching root and contains
        # a full worker solve subtree (the grafted remote events).
        for shard_id in shard_ids:
            assert shard_id in tree[root]
            names = {name_of[i] for i in _descendants(tree, shard_id)}
            assert "slicebrs.solve" in names
            assert "sweep.scan_slab" in names

        # Worker subtrees are disjoint: a span grafted under one shard
        # never appears under another (ids were remapped per graft).
        seen: set = set()
        for shard_id in shard_ids:
            sub = _descendants(tree, shard_id)
            assert not (sub & seen)
            seen |= sub

    def test_shard_wrappers_carry_dispatch_attributes(self, tmp_path):
        path = str(tmp_path / "run.jsonl")
        points, fn = _instance(seed=13)
        with JsonlTraceWriter(path) as writer:
            with trace_scope(Tracer(writer)):
                solve_partitioned(
                    points, fn, 2.0, 2.0, n_parts=3, workers=2
                )
        events = read_trace(path)
        wrappers = [
            e for e in events
            if e.get("ev") == "enter" and e.get("span") == "parallel.shard"
        ]
        assert {w["shard"] for w in wrappers} == {0, 1, 2}
        for w in wrappers:
            assert w["status"] in ("ok", "degraded", "timeout")
            assert "worker" in w and "seconds" in w

    def test_disabled_tracing_ships_no_buffers(self):
        # With the ambient NULL tracer workers must not buffer events --
        # the ShardTask.trace flag gates the cost off the hot path.
        points, fn = _instance(seed=17)
        result = solve_partitioned(points, fn, 2.0, 2.0, n_parts=2, workers=2)
        assert result.status in ("ok", "degraded")
