"""Fault injection for the process-pool backend.

Faults are threaded through the real dispatch path (the task's ``fault``
field), so retries, pool rebuilds, and the serial degradation are
exercised end to end:

* a worker that *raises* keeps the pool alive — its shard is requeued
  and the final answer is still exact;
* a worker that *crashes* breaks the whole pool — the pool is rebuilt
  and the answer is still exact;
* exhausted retries degrade the shard to the in-process serial path —
  still exact while the budget allows;
* a *stalled* worker under a deadline yields an anytime answer: degraded
  but sound (reported score <= reported upper bound).
"""

from __future__ import annotations

import pytest

from repro.core.naive import NaiveBRS
from repro.obs.metrics import MetricsRegistry, metrics_scope
from repro.parallel import solve_partitioned
from repro.runtime.budget import Budget
from repro.runtime.errors import InvalidQueryError
from tests.helpers import random_instance


@pytest.fixture()
def instance():
    points, fn, a, b = random_instance(5, max_objects=30)
    oracle = NaiveBRS().solve(points, fn, a, b)
    return points, fn, a, b, oracle


def _counter(snapshot, name):
    metric = snapshot.get(name)
    return metric["value"] if metric else 0.0


def test_raising_worker_is_retried_exactly(instance):
    points, fn, a, b, oracle = instance
    registry = MetricsRegistry()
    with metrics_scope(registry):
        result = solve_partitioned(
            points, fn, a, b, n_parts=3, workers=2,
            inject_faults={0: ["raise"]},
        )
    snap = registry.snapshot()
    assert result.status == "ok"
    assert result.score == pytest.approx(oracle.score)
    assert _counter(snap, "brs_parallel_retries_total") >= 1
    assert _counter(snap, "brs_parallel_worker_failures_total") >= 1


def test_crashed_worker_rebuilds_pool_exactly(instance):
    points, fn, a, b, oracle = instance
    registry = MetricsRegistry()
    with metrics_scope(registry):
        result = solve_partitioned(
            points, fn, a, b, n_parts=3, workers=2,
            inject_faults={1: ["crash"]},
        )
    snap = registry.snapshot()
    assert result.status == "ok"
    assert result.score == pytest.approx(oracle.score)
    assert _counter(snap, "brs_parallel_pool_rebuilds_total") >= 1
    assert _counter(snap, "brs_parallel_retries_total") >= 1


def test_retry_exhaustion_degrades_to_serial_exactly(instance):
    points, fn, a, b, oracle = instance
    registry = MetricsRegistry()
    with metrics_scope(registry):
        result = solve_partitioned(
            points, fn, a, b, n_parts=3, workers=2, max_retries=0,
            inject_faults={0: ["raise", "raise", "raise"]},
        )
    snap = registry.snapshot()
    # Even with the shard's retry budget gone, the serial fallback makes
    # the answer exact.
    assert result.status == "ok"
    assert result.score == pytest.approx(oracle.score)
    assert _counter(snap, "brs_parallel_serial_fallbacks_total") >= 1


def test_every_shard_faulting_still_solves(instance):
    points, fn, a, b, oracle = instance
    result = solve_partitioned(
        points, fn, a, b, n_parts=3, workers=2, max_retries=1,
        inject_faults={0: ["raise"], 1: ["raise"], 2: ["raise"]},
    )
    assert result.status == "ok"
    assert result.score == pytest.approx(oracle.score)


def test_stalled_worker_under_deadline_is_sound(instance):
    points, fn, a, b, _ = instance
    result = solve_partitioned(
        points, fn, a, b, n_parts=3, workers=2,
        budget=Budget(deadline=2.0),
        inject_faults={0: ["stall", "stall", "stall"]},
    )
    # Anytime contract: whatever came back is degraded but sound.
    if result.status != "ok":
        assert result.upper_bound is not None
        assert result.upper_bound >= result.score - 1e-9
    assert result.score >= 0.0


def test_negative_max_retries_rejected(instance):
    points, fn, a, b, _ = instance
    with pytest.raises(InvalidQueryError):
        solve_partitioned(points, fn, a, b, workers=2, max_retries=-1)


def test_unpicklable_function_fails_fast():
    from repro.functions.base import SetFunction
    from repro.geometry.point import Point

    class Local(SetFunction):  # unpicklable: defined in a function body
        def value(self, objects):
            return float(len(set(objects)))

        def marginal(self, obj_id, base):
            ids = set(base)
            return 0.0 if obj_id in ids else 1.0

    points = [Point(float(i), 0.0) for i in range(10)]
    with pytest.raises(InvalidQueryError):
        solve_partitioned(points, Local(), 1.0, 1.0, n_parts=3, workers=2)
