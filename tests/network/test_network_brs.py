"""Tests for BRS on road networks (future-work extension)."""

import random

import pytest

from repro.functions.coverage import CoverageFunction
from repro.functions.weighted_sum import SumFunction
from repro.network.brs import best_network_region
from repro.network.graph import RoadNetwork


def _line_network(n, length=1.0):
    """0 - 1 - 2 - ... - (n-1), unit edges."""
    return RoadNetwork(n, [(i, i + 1, length) for i in range(n - 1)])


def _random_network(n, seed=0, extra_edges=None):
    rng = random.Random(seed)
    edges = [(i, i + 1, rng.uniform(0.5, 2.0)) for i in range(n - 1)]
    for _ in range(extra_edges if extra_edges is not None else n // 2):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            edges.append((u, v, rng.uniform(0.5, 3.0)))
    return RoadNetwork(n, edges)


class TestRoadNetwork:
    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            RoadNetwork(0, [])
        with pytest.raises(ValueError):
            RoadNetwork(2, [(0, 2, 1.0)])
        with pytest.raises(ValueError):
            RoadNetwork(2, [(0, 1, 0.0)])

    def test_parallel_edges_keep_shortest(self):
        net = RoadNetwork(2, [(0, 1, 5.0), (0, 1, 2.0), (1, 0, 9.0)])
        assert net.n_edges == 1
        assert net.ball(0, 3.0) == {0: 0.0, 1: 2.0}

    def test_self_loops_dropped(self):
        net = RoadNetwork(2, [(0, 0, 1.0), (0, 1, 1.0)])
        assert net.n_edges == 1

    def test_ball_open_boundary(self):
        net = _line_network(4)
        # Node 2 is at distance exactly 2.0: excluded by the open ball.
        assert set(net.ball(0, 2.0)) == {0, 1}
        assert set(net.ball(0, 2.0001)) == {0, 1, 2}

    def test_ball_distances_are_shortest_paths(self):
        net = RoadNetwork(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0), (2, 3, 1.0)])
        ball = net.ball(0, 10.0)
        assert ball[2] == 2.0  # via node 1, not the direct 5.0 edge
        assert ball[3] == 3.0

    def test_ball_rejects_bad_args(self):
        net = _line_network(3)
        with pytest.raises(ValueError):
            net.ball(5, 1.0)
        with pytest.raises(ValueError):
            net.ball(0, 0.0)


class TestBestNetworkRegion:
    def test_rejects_bad_inputs(self):
        net = _line_network(3)
        with pytest.raises(ValueError):
            best_network_region(net, [], SumFunction(0), 1.0)
        with pytest.raises(ValueError):
            best_network_region(net, [7], SumFunction(1), 1.0)
        with pytest.raises(ValueError):
            best_network_region(net, [0], SumFunction(1), 0.0)

    def test_picks_densest_neighbourhood(self):
        net = _line_network(10)
        # Objects at nodes 0, 1, 2 and a lone one at node 9.
        node_of_object = [0, 1, 2, 9]
        result = best_network_region(net, node_of_object, SumFunction(4), 1.5)
        assert result.score == 3.0
        assert result.center == 1
        assert result.object_ids == [0, 1, 2]

    def test_diversity_beats_density_on_networks_too(self):
        """The Figure 1 story transfers: 3 same-tag objects lose to 2
        different-tag ones under coverage."""
        net = _line_network(10)
        node_of_object = [0, 1, 2, 8, 9]
        fn = CoverageFunction([{"a"}, {"a"}, {"a"}, {"b"}, {"c"}])
        result = best_network_region(net, node_of_object, fn, 1.5)
        assert result.score == 2.0
        assert result.object_ids == [3, 4]

    @pytest.mark.parametrize("seed", range(10))
    def test_pruned_matches_exhaustive(self, seed):
        rng = random.Random(seed)
        n = rng.randint(5, 30)
        net = _random_network(n, seed=seed)
        n_objects = rng.randint(1, 20)
        node_of_object = [rng.randrange(n) for _ in range(n_objects)]
        labels = [set(rng.sample("abcdef", rng.randint(1, 3))) for _ in range(n_objects)]
        fn = CoverageFunction(labels)
        radius = rng.uniform(0.5, 4.0)
        pruned = best_network_region(net, node_of_object, fn, radius, prune=True)
        naive = best_network_region(net, node_of_object, fn, radius, prune=False)
        assert pruned.score == pytest.approx(naive.score)

    def test_pruning_saves_evaluations(self):
        rng = random.Random(3)
        net = _random_network(120, seed=3)
        node_of_object = [rng.randrange(120) for _ in range(80)]
        fn = SumFunction(80)
        pruned = best_network_region(net, node_of_object, fn, 2.0, prune=True)
        naive = best_network_region(net, node_of_object, fn, 2.0, prune=False)
        assert pruned.score == pytest.approx(naive.score)
        assert pruned.stats.n_candidates <= naive.stats.n_candidates

    def test_result_consistency(self):
        net = _random_network(40, seed=5)
        rng = random.Random(6)
        node_of_object = [rng.randrange(40) for _ in range(25)]
        fn = SumFunction(25)
        result = best_network_region(net, node_of_object, fn, 2.5)
        # Every reported object sits on a node of the reported ball.
        for obj_id in result.object_ids:
            assert node_of_object[obj_id] in result.node_distances
        assert result.score == pytest.approx(fn.value(result.object_ids))

    def test_multiple_objects_per_node(self):
        net = _line_network(3)
        result = best_network_region(net, [1, 1, 1], SumFunction(3), 0.5)
        assert result.score == 3.0
        assert result.center == 1
