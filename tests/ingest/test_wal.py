"""Write-ahead log tests: durability format, torn tails, disk faults."""

import json
import zlib

import pytest

from repro.ingest.events import Delete, Insert, MutationBatch
from repro.ingest.wal import IngestLog, read_log
from repro.obs.metrics import MetricsRegistry, metrics_scope
from repro.runtime.errors import IngestError, LogCorruptionError
from repro.runtime.faults import DiskFaultPlan, FaultyLogFile


def _batch(seq, events=None, batch_id=None):
    return MutationBatch(
        batch_id=batch_id or f"b{seq}",
        seq=seq,
        events=tuple(events or [Insert(1.0 + seq, 2.0, payload=[seq])]),
    )


def _faulty_opener(plan):
    return lambda path: FaultyLogFile(open(path, "ab"), plan)


class TestRoundTrip:
    def test_missing_file_is_empty_log(self, tmp_path):
        replay = read_log(tmp_path / "nope.jsonl")
        assert replay.batches == []
        assert replay.last_seq == -1
        assert not replay.truncated_tail

    def test_batches_and_marks_round_trip(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with IngestLog(wal) as log:
            log.append_batch(_batch(0, [Insert(1.0, 2.0, payload=[3])]))
            log.append_batch(_batch(1, [Delete(0)]))
            log.append_mark("b0", 0, "applied", attempts=1)
            log.append_mark("b1", 1, "failed", attempts=4)
        replay = read_log(wal)
        assert [rb.batch.seq for rb in replay.batches] == [0, 1]
        assert [rb.state for rb in replay.batches] == ["applied", "failed"]
        assert [rb.attempts for rb in replay.batches] == [1, 4]
        assert replay.batches[0].batch.events == (Insert(1.0, 2.0, payload=[3]),)
        assert replay.batches[1].batch.events == (Delete(0),)

    def test_unmarked_batch_is_pending(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with IngestLog(wal) as log:
            log.append_batch(_batch(0))
        replay = read_log(wal)
        assert replay.batches[0].state == "pending"

    def test_reopen_resumes_sequence(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with IngestLog(wal) as log:
            log.append_batch(_batch(0))
        with IngestLog(wal) as log:
            assert log.last_seq == 0
            log.append_batch(_batch(1))
        assert read_log(wal).last_seq == 1

    def test_nonsync_mode_still_round_trips(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with IngestLog(wal, sync=False) as log:
            log.append_batch(_batch(0))
        assert read_log(wal).last_seq == 0


class TestValidation:
    def test_append_rejects_non_increasing_seq(self, tmp_path):
        with IngestLog(tmp_path / "wal.jsonl") as log:
            log.append_batch(_batch(3))
            with pytest.raises(IngestError):
                log.append_batch(_batch(3, batch_id="other"))
            with pytest.raises(IngestError):
                log.append_batch(_batch(1))

    def test_append_mark_rejects_unknown_state(self, tmp_path):
        with IngestLog(tmp_path / "wal.jsonl") as log:
            with pytest.raises(IngestError):
                log.append_mark("b0", 0, "halfway")

    def test_read_rejects_duplicate_batch_id(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with IngestLog(wal) as log:
            log.append_batch(_batch(0, batch_id="dup"))
            log.append_batch(_batch(1, batch_id="dup"))
        with pytest.raises(LogCorruptionError):
            read_log(wal)

    def test_read_rejects_mark_for_unknown_batch(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with IngestLog(wal) as log:
            log.append_mark("ghost", 0, "applied")
        with pytest.raises(LogCorruptionError):
            read_log(wal)


class TestCorruption:
    def test_torn_tail_is_truncated_not_fatal(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with IngestLog(wal) as log:
            log.append_batch(_batch(0))
            log.append_batch(_batch(1))
        whole = wal.read_bytes()
        wal.write_bytes(whole[:-9])  # shear the final record mid-line
        replay = read_log(wal)
        assert replay.truncated_tail
        assert [rb.batch.seq for rb in replay.batches] == [0]

    def test_opening_a_torn_log_repairs_it(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with IngestLog(wal) as log:
            log.append_batch(_batch(0))
        good_size = wal.stat().st_size
        with open(wal, "ab") as fh:
            fh.write(b'{"kind": "batch", "batch_id"')  # torn append
        with IngestLog(wal) as log:
            assert wal.stat().st_size == good_size
            log.append_batch(_batch(1))
        replay = read_log(wal)
        assert not replay.truncated_tail
        assert [rb.batch.seq for rb in replay.batches] == [0, 1]

    def test_midlog_corruption_raises_with_record_index(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with IngestLog(wal) as log:
            for seq in range(3):
                log.append_batch(_batch(seq))
        lines = wal.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1][:10] + b"X" + lines[1][11:]  # flip a byte mid-log
        wal.write_bytes(b"".join(lines))
        with pytest.raises(LogCorruptionError) as excinfo:
            read_log(wal)
        assert excinfo.value.record_index == 1

    def test_wrong_crc_is_detected(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        record = _batch(0).to_json()
        record["kind"] = "batch"
        record["crc"] = zlib.crc32(b"not the payload")
        wal.write_bytes(
            json.dumps(record, sort_keys=True).encode() + b"\n"
            + json.dumps({"kind": "mark"}, sort_keys=True).encode() + b"\n"
        )
        with pytest.raises(LogCorruptionError) as excinfo:
            read_log(wal)
        assert excinfo.value.record_index == 0

    def test_truncation_is_counted(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with IngestLog(wal) as log:
            log.append_batch(_batch(0))
        with open(wal, "ab") as fh:
            fh.write(b"torn!")
        registry = MetricsRegistry()
        with metrics_scope(registry):
            read_log(wal)
        assert registry.counter("brs_ingest_wal_truncations_total").value == 1
        assert registry.counter("brs_ingest_wal_records_total").value == 1


class TestDiskFaults:
    def test_torn_write_raises_and_self_repairs(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        plan = DiskFaultPlan("torn", indices=[1])
        log = IngestLog(wal, opener=_faulty_opener(plan))
        log.append_batch(_batch(0))
        with pytest.raises(IngestError):
            log.append_batch(_batch(1))
        # The failed append left no partial bytes behind; a retry of the
        # same payload lands cleanly.
        log.append_batch(_batch(1))
        log.close()
        replay = read_log(wal)
        assert not replay.truncated_tail
        assert [rb.batch.seq for rb in replay.batches] == [0, 1]

    def test_silent_short_write_is_caught_by_checksum(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        plan = DiskFaultPlan("short", indices=[0])
        log = IngestLog(wal, opener=_faulty_opener(plan))
        log.append_batch(_batch(0))  # the kernel lied; no error surfaced
        log.append_batch(_batch(1))
        log.close()
        # Replay sees a mid-log record whose bytes do not match its CRC.
        with pytest.raises(LogCorruptionError) as excinfo:
            read_log(wal)
        assert excinfo.value.record_index == 0

    def test_fsync_failure_raises_and_retry_succeeds(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        # max_faults=1: the fault clears after one injection (a transient
        # error) -- write indices restart per reopened file, so an uncapped
        # indices=[0] plan would re-fault forever.
        plan = DiskFaultPlan("fsync", indices=[0], max_faults=1)
        log = IngestLog(wal, opener=_faulty_opener(plan))
        with pytest.raises(IngestError):
            log.append_batch(_batch(0))
        log.append_batch(_batch(0))
        log.close()
        replay = read_log(wal)
        assert not replay.truncated_tail
        assert [rb.batch.seq for rb in replay.batches] == [0]
        assert plan.faults_injected == 1

    def test_faulted_append_does_not_advance_last_seq(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        plan = DiskFaultPlan("torn", indices=[0], max_faults=1)
        log = IngestLog(wal, opener=_faulty_opener(plan))
        with pytest.raises(IngestError):
            log.append_batch(_batch(0))
        assert log.last_seq == -1
        log.append_batch(_batch(0))
        assert log.last_seq == 0
        log.close()
