"""Crash-recovery differentials: replay equals a from-scratch rebuild.

The acceptance property of the durable ingest pipeline: kill the process
at *any* point — mid-append (torn WAL tail), after the append but before
the apply, after visibility but before the mark — restart, replay, and
the recovered dataset is byte-identical to one rebuilt from scratch from
the durably logged batches, down to the exact optimal score the naive
oracle computes.

Most trials here simulate the crash deterministically by truncating a
fully written WAL at seeded byte offsets (every prefix of a WAL is a
possible crash state, including mid-record ones).  One slower trial
SIGKILLs a real child process via the ``repro.ingest.selfcheck`` harness
that CI runs at larger scale.
"""

import random
import sys

import pytest

from repro.ingest import selfcheck
from repro.ingest.live import LiveDataset
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.wal import IngestLog, read_log


def _run_workload(seed: int, wal, n_batches: int = 12) -> None:
    """Feed the seeded workload through a real pipeline (no crash)."""
    points, payloads = selfcheck.base_points(seed)
    live = LiveDataset(points, payloads, space=selfcheck.SPACE)
    with IngestPipeline(live, IngestLog(wal, sync=False)) as pipe:
        for events in selfcheck.seeded_workload(seed, n_batches):
            pipe.append(events)


@pytest.mark.parametrize("seed", range(20))
def test_recovery_from_seeded_truncation_matches_rebuild(tmp_path, seed):
    """Cut the WAL at a seeded offset — a simulated crash — and recover."""
    wal = tmp_path / "wal.jsonl"
    _run_workload(seed, wal)
    whole = wal.read_bytes()
    # A crash persists some prefix of the log; pick one that keeps at
    # least one full record so there is something to replay.
    rng = random.Random(seed * 7 + 1)
    first_record_end = whole.index(b"\n") + 1
    cut = rng.randint(first_record_end, len(whole))
    wal.write_bytes(whole[:cut])

    verdict = selfcheck.check_trial(seed, wal)
    assert verdict["ok"], verdict["failures"]
    assert verdict["alive_objects"] > 0


def test_mid_record_truncation_is_survivable(tmp_path):
    """A cut strictly inside the final record must replay as a torn tail."""
    wal = tmp_path / "wal.jsonl"
    _run_workload(3, wal)
    whole = wal.read_bytes()
    last_line_start = whole.rstrip(b"\n").rindex(b"\n") + 1
    wal.write_bytes(whole[: last_line_start + 5])  # shear the last record

    assert read_log(wal).truncated_tail
    verdict = selfcheck.check_trial(3, wal)
    assert verdict["ok"], verdict["failures"]
    # Recovery repaired the tail on open: the log is clean again.
    assert not read_log(wal).truncated_tail


def test_recovery_is_idempotent(tmp_path):
    """Recovering an already-recovered log changes nothing."""
    wal = tmp_path / "wal.jsonl"
    _run_workload(5, wal)
    once = selfcheck.recover_with_pipeline(5, wal)
    twice = selfcheck.recover_with_pipeline(5, wal)
    assert selfcheck.fingerprint(once) == selfcheck.fingerprint(twice)


def test_recovered_pipeline_accepts_new_batches(tmp_path):
    """Post-recovery the pipeline keeps working with correct sequencing."""
    wal = tmp_path / "wal.jsonl"
    _run_workload(9, wal, n_batches=6)
    points, payloads = selfcheck.base_points(9)
    live = LiveDataset(points, payloads, space=selfcheck.SPACE)
    with IngestPipeline(live, IngestLog(wal, sync=False)) as pipe:
        replayed_seq = pipe.live.last_applied_seq
        batch = pipe.append(selfcheck.seeded_workload(9, 7)[6])
        assert batch.seq == replayed_seq + 1
        assert pipe.batch_status(batch.batch_id).state == "visible"
    for rect in selfcheck.probe_rects(9):
        live.check_consistency(rect)


@pytest.mark.slow
def test_sigkill_mid_flight_recovers(tmp_path):
    """One real SIGKILL trial through the CI selfcheck harness."""
    verdict = selfcheck.run_trial(
        seed=1, wal=tmp_path / "wal.jsonl", n_batches=20, pause=0.02
    )
    assert verdict["ok"], verdict["failures"]
