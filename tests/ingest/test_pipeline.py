"""IngestPipeline tests: state machine, retries, drain, shutdown, flips."""

import random
import threading

import pytest

from repro.functions.coverage import CoverageFunction
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.ingest.events import Delete, Insert
from repro.ingest.live import LiveDataset
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.wal import IngestLog, read_log
from repro.obs.metrics import MetricsRegistry
from repro.runtime.errors import IngestError
from repro.runtime.faults import DiskFaultPlan, FaultyLogFile
from repro.serve.cache import ResultCache
from repro.serve.model import normalize_query
from repro.serve.store import DatasetStore

SPACE = Rect(0.0, 10.0, 0.0, 10.0)


def _live(n=6, seed=5):
    rng = random.Random(seed)
    points = [Point(rng.uniform(1, 9), rng.uniform(1, 9)) for _ in range(n)]
    payloads = [[i % 4] for i in range(n)]
    return LiveDataset(points, payloads, space=SPACE)


def _pipe(tmp_path, **kwargs):
    return IngestPipeline(_live(), IngestLog(tmp_path / "wal.jsonl"), **kwargs)


class TestStateMachine:
    def test_sync_append_is_visible_on_return(self, tmp_path):
        with _pipe(tmp_path) as pipe:
            batch = pipe.append([Insert(2.0, 2.0, payload=[1])])
            assert pipe.batch_status(batch.batch_id).state == "visible"
            assert pipe.live.n_alive == 7
            assert read_log(pipe.log.path).batches[0].state == "applied"

    def test_seq_numbers_are_dense_and_increasing(self, tmp_path):
        with _pipe(tmp_path) as pipe:
            seqs = [pipe.append([Insert(2.0, 2.0)]).seq for _ in range(3)]
        assert seqs == [0, 1, 2]

    def test_expected_failure_lands_in_failed(self, tmp_path):
        with _pipe(tmp_path, max_retries=1, backoff=0.0) as pipe:
            batch = pipe.append([Delete(99)])
            status = pipe.batch_status(batch.batch_id)
            assert status.state == "failed"
            assert status.attempts == 2  # initial try + one retry
            assert "unknown or dead" in status.error
            assert pipe.live.n_alive == 6  # nothing changed
        assert read_log(tmp_path / "wal.jsonl").batches[0].state == "failed"

    def test_duplicate_batch_id_rejected(self, tmp_path):
        with _pipe(tmp_path) as pipe:
            pipe.append([Insert(2.0, 2.0)], batch_id="same")
            with pytest.raises(IngestError):
                pipe.append([Insert(3.0, 3.0)], batch_id="same")

    def test_closed_pipeline_rejects_appends(self, tmp_path):
        pipe = _pipe(tmp_path)
        pipe.close()
        with pytest.raises(IngestError):
            pipe.append([Insert(2.0, 2.0)])

    def test_status_summary_counts_states(self, tmp_path):
        with _pipe(tmp_path, max_retries=0, backoff=0.0) as pipe:
            pipe.append([Insert(2.0, 2.0)])
            pipe.append([Delete(99)])
            summary = pipe.status()
        assert summary["states"]["visible"] == 1
        assert summary["states"]["failed"] == 1
        assert summary["last_seq"] == 1
        assert summary["alive_objects"] == 7


class TestRetries:
    def test_transient_apply_fault_is_retried(self, tmp_path, monkeypatch):
        sleeps = []
        pipe = _pipe(tmp_path, max_retries=3, backoff=0.5, sleeper=sleeps.append)
        real_apply = pipe.live.apply
        attempts = {"n": 0}

        def flaky_apply(batch):
            attempts["n"] += 1
            if attempts["n"] <= 2:
                raise IngestError("transient")
            return real_apply(batch)

        monkeypatch.setattr(pipe.live, "apply", flaky_apply)
        batch = pipe.append([Insert(2.0, 2.0)])
        status = pipe.batch_status(batch.batch_id)
        assert status.state == "visible"
        assert status.attempts == 3
        assert sleeps == [0.5, 1.0]  # exponential backoff, injected sleeper
        pipe.close()

    def test_exhausted_retries_fail_terminally(self, tmp_path, monkeypatch):
        registry = MetricsRegistry()
        pipe = _pipe(
            tmp_path, max_retries=2, backoff=0.0, registry=registry
        )
        monkeypatch.setattr(
            pipe.live,
            "apply",
            lambda batch: (_ for _ in ()).throw(IngestError("permanent")),
        )
        batch = pipe.append([Insert(2.0, 2.0)])
        assert pipe.batch_status(batch.batch_id).state == "failed"
        assert registry.counter("brs_ingest_retries_total").value == 2
        assert registry.counter("brs_ingest_batches_failed_total").value == 1
        pipe.close()

    def test_unloggable_failed_mark_keeps_batch_durable_pending(
        self, tmp_path, monkeypatch
    ):
        # The mark write dies (disk fault) after the apply failed: the
        # batch's durable state stays "pending" so recovery re-judges it.
        registry = MetricsRegistry()
        plan = DiskFaultPlan("torn", indices=[1], max_faults=1)
        log = IngestLog(
            tmp_path / "wal.jsonl",
            opener=lambda path: FaultyLogFile(open(path, "ab"), plan),
        )
        pipe = IngestPipeline(
            _live(), log, max_retries=0, backoff=0.0, registry=registry
        )
        batch = pipe.append([Delete(99)])
        assert pipe.batch_status(batch.batch_id).state == "failed"
        assert registry.counter("brs_ingest_unmarked_total").value == 1
        pipe.close()
        assert read_log(tmp_path / "wal.jsonl").batches[0].state == "pending"


class TestBackgroundDrain:
    def test_background_append_becomes_visible_after_drain(self, tmp_path):
        with _pipe(tmp_path, background=True) as pipe:
            batch = pipe.append([Insert(2.0, 2.0)])
            assert pipe.drain(timeout=10.0)
            assert pipe.batch_status(batch.batch_id).state == "visible"

    def test_close_flushes_everything_pending(self, tmp_path):
        pipe = _pipe(tmp_path, background=True)
        ids = [pipe.append([Insert(2.0 + i * 0.1, 2.0)]).batch_id for i in range(20)]
        pipe.close(flush=True)
        assert all(pipe.batch_status(b).state == "visible" for b in ids)
        assert pipe.status()["states"]["pending"] == 0
        replay = read_log(tmp_path / "wal.jsonl")
        assert all(rb.state == "applied" for rb in replay.batches)

    def test_concurrent_producers_never_corrupt_the_log(self, tmp_path):
        pipe = _pipe(tmp_path, background=True)
        errors = []

        def produce(tag):
            try:
                for i in range(10):
                    pipe.append(
                        [Insert(1.0 + tag * 0.3, 1.0 + i * 0.2, payload=[tag])]
                    )
            except IngestError as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [
            threading.Thread(target=produce, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        pipe.close(flush=True)
        assert not errors
        replay = read_log(tmp_path / "wal.jsonl")
        assert [rb.batch.seq for rb in replay.batches] == list(range(40))
        assert pipe.live.n_alive == 6 + 40
        pipe.live.check_consistency(SPACE)


class TestStoreFlip:
    def _served(self, tmp_path, cache_size=16):
        live = _live()
        store = DatasetStore()
        cache = ResultCache(cache_size)
        points, ids, fn = live.snapshot()
        store.add_points("d", points, fn, fn_key="coverage")
        pipe = IngestPipeline(
            live,
            IngestLog(tmp_path / "wal.jsonl"),
            store=store,
            cache=cache,
            dataset_id="d",
        )
        return pipe, store, cache

    def test_store_requires_dataset_id(self, tmp_path):
        with pytest.raises(IngestError):
            IngestPipeline(
                _live(), IngestLog(tmp_path / "wal.jsonl"), store=DatasetStore()
            )

    def test_flip_bumps_mutation_seq_not_version(self, tmp_path):
        pipe, store, _ = self._served(tmp_path)
        before = store.resolve("d")
        pipe.append([Insert(2.0, 2.0, payload=[1])])
        after = store.resolve("d")
        assert after.version == before.version
        assert after.mutation_seq == before.mutation_seq + 1
        assert len(after.points) == 7
        assert after.external_ids == list(range(7))
        pipe.close()

    def test_flip_evicts_only_touched_region(self, tmp_path):
        pipe, store, cache = self._served(tmp_path)
        version = store.resolve("d").version
        far = normalize_query(
            "d", version, "coverage", 1.0, 1.0, focus=(8.0, 9.0, 8.0, 9.0)
        )
        near = normalize_query(
            "d", version, "coverage", 1.0, 1.0, focus=(1.5, 3.0, 1.5, 3.0)
        )
        unfocused = normalize_query("d", version, "coverage", 1.0, 1.0)
        for key in (far, near, unfocused):
            cache.put(key, "answer")
        pipe.append([Insert(2.0, 2.0, payload=[1])])
        assert far in cache
        assert near not in cache
        assert unfocused not in cache
        pipe.close()

    def test_failed_batch_does_not_flip(self, tmp_path):
        pipe, store, cache = self._served(tmp_path)
        key = normalize_query("d", store.resolve("d").version, "coverage", 1.0, 1.0)
        cache.put(key, "answer")
        pipe.append([Delete(99)])
        assert store.resolve("d").mutation_seq == 0
        assert key in cache
        pipe.close()


class TestRecoveryReplay:
    def test_pending_batches_are_reapplied_and_marked(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        # Simulate a crash after the WAL write but before any mark: log
        # the batch directly, never run it.
        with IngestLog(wal) as log:
            from repro.ingest.events import MutationBatch

            log.append_batch(
                MutationBatch("b0", 0, (Insert(2.0, 2.0, payload=[1]),))
            )
        registry = MetricsRegistry()
        pipe = IngestPipeline(_live(), IngestLog(wal), registry=registry)
        assert pipe.n_replayed == 1
        assert pipe.live.n_alive == 7
        assert pipe.batch_status("b0").state == "visible"
        assert registry.counter("brs_ingest_replayed_total").value == 1
        pipe.close()
        assert read_log(wal).batches[0].state == "applied"

    def test_failed_batches_are_skipped_on_replay(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        with IngestLog(wal) as log:
            from repro.ingest.events import MutationBatch

            log.append_batch(MutationBatch("bad", 0, (Delete(99),)))
            log.append_mark("bad", 0, "failed", attempts=4)
        pipe = IngestPipeline(_live(), IngestLog(wal))
        assert pipe.n_replayed == 0
        assert pipe.batch_status("bad").state == "failed"
        assert pipe.live.n_alive == 6
        pipe.close()

    def test_replay_installs_one_snapshot_into_the_store(self, tmp_path):
        wal = tmp_path / "wal.jsonl"
        live = _live()
        with IngestLog(wal) as log:
            from repro.ingest.events import MutationBatch

            log.append_batch(
                MutationBatch("b0", 0, (Insert(2.0, 2.0, payload=[1]),))
            )
        store = DatasetStore()
        points, ids, fn = live.snapshot()
        store.add_points("d", points, fn, fn_key="coverage")
        pipe = IngestPipeline(
            live, IngestLog(wal), store=store, dataset_id="d"
        )
        entry = store.resolve("d")
        assert len(entry.points) == 7
        assert entry.mutation_seq == 1
        pipe.close()
