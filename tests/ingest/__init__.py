"""Durable ingest tests."""
