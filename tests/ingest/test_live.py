"""LiveDataset tests: incremental index maintenance, atomicity, snapshots.

The central differential: after any event sequence, the incrementally
maintained indexes must answer exactly like a LiveDataset rebuilt from
scratch over the same final state — and all three indexes must agree
with each other and with a brute-force scan.
"""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import BBox, Rect
from repro.ingest.events import Delete, Insert, MutationBatch
from repro.ingest.live import LiveDataset, coverage_fn_builder, live_from_diversity
from repro.runtime.errors import IngestError

SPACE = Rect(0.0, 10.0, 0.0, 10.0)


def _base(n=20, seed=7):
    rng = random.Random(seed)
    points = [Point(rng.uniform(1, 9), rng.uniform(1, 9)) for _ in range(n)]
    payloads = [sorted(rng.sample(range(12), 2)) for _ in range(n)]
    return points, payloads


def _live(n=20, seed=7):
    points, payloads = _base(n, seed)
    return LiveDataset(points, payloads, space=SPACE)


def _batch(seq, events):
    return MutationBatch(batch_id=f"b{seq}", seq=seq, events=tuple(events))


def _brute(live, rect):
    return sorted(
        i for i in live.alive_ids() if rect.contains_point(live.point_of(i))
    )


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(IngestError):
            LiveDataset([])

    def test_rejects_mismatched_payloads(self):
        with pytest.raises(IngestError):
            LiveDataset([Point(1, 1)], payloads=[[1], [2]])

    def test_wraps_diversity_dataset(self):
        from repro.datasets.registry import yelp_like

        ds = yelp_like(n_objects=60, seed=3)
        live = live_from_diversity(ds)
        assert live.n_alive == len(ds.points)
        _, _, fn = live.snapshot()
        assert fn.value(frozenset(range(live.n_alive))) == ds.score_function().value(
            frozenset(range(len(ds.points)))
        )

    def test_rejects_non_diversity_dataset(self):
        with pytest.raises(IngestError):
            live_from_diversity(object())


class TestApply:
    def test_insert_assigns_next_stable_id(self):
        live = _live(n=5)
        result = live.apply(_batch(0, [Insert(2.0, 2.0), Insert(3.0, 3.0)]))
        assert result.inserted_ids == (5, 6)
        assert live.n_alive == 7
        assert live.is_alive(5) and live.is_alive(6)

    def test_delete_tombstones_but_never_reuses_ids(self):
        live = _live(n=5)
        live.apply(_batch(0, [Delete(2)]))
        assert not live.is_alive(2)
        result = live.apply(_batch(1, [Insert(4.0, 4.0)]))
        assert result.inserted_ids == (5,)  # id 2 stays retired
        assert live.point_of(2) is not None  # history kept

    def test_touched_box_covers_all_mutated_points(self):
        live = _live(n=5)
        result = live.apply(
            _batch(0, [Insert(1.5, 8.0), Insert(6.0, 2.0), Delete(0)])
        )
        box = result.touched
        p0 = live.point_of(0)
        for x, y in [(1.5, 8.0), (6.0, 2.0), (p0.x, p0.y)]:
            assert box.x_min <= x <= box.x_max
            assert box.y_min <= y <= box.y_max

    def test_rejects_replayed_seq(self):
        live = _live()
        live.apply(_batch(3, [Insert(2.0, 2.0)]))
        with pytest.raises(IngestError):
            live.apply(_batch(3, [Insert(2.5, 2.5)]))
        with pytest.raises(IngestError):
            live.apply(_batch(1, [Insert(2.5, 2.5)]))

    def test_same_batch_insert_then_delete(self):
        live = _live(n=5)
        live.apply(_batch(0, [Insert(2.0, 2.0), Delete(5)]))
        assert not live.is_alive(5)
        assert live.n_alive == 5


class TestAtomicity:
    def test_expected_failure_changes_nothing(self):
        live = _live(n=5)
        before = (live.n_total, live.alive_ids())
        with pytest.raises(IngestError):
            live.apply(_batch(0, [Insert(2.0, 2.0), Delete(99)]))
        assert (live.n_total, live.alive_ids()) == before
        assert live.last_applied_seq == -1
        live.check_consistency(SPACE)

    def test_cannot_empty_the_dataset(self):
        live = LiveDataset([Point(1, 1), Point(2, 2)], space=SPACE)
        with pytest.raises(IngestError):
            live.apply(_batch(0, [Delete(0), Delete(1)]))
        assert live.n_alive == 2

    def test_unexpected_midbatch_failure_rolls_back(self, monkeypatch):
        live = _live(n=6)
        live.apply(_batch(0, [Delete(1)]))
        before_alive = live.alive_ids()
        before_probe = live.check_consistency(SPACE)

        real_insert = live.rtree.insert
        calls = {"n": 0}

        def exploding_insert(p):
            calls["n"] += 1
            if calls["n"] == 2:  # second insert of the batch dies mid-apply
                raise RuntimeError("injected index fault")
            return real_insert(p)

        monkeypatch.setattr(live.rtree, "insert", exploding_insert)
        with pytest.raises(IngestError):
            live.apply(_batch(1, [Insert(3.0, 3.0), Insert(4.0, 4.0)]))
        monkeypatch.undo()

        assert live.alive_ids() == before_alive
        assert live.check_consistency(SPACE) == before_probe
        # The dataset still works after the rollback rebuild: the retry
        # assigns the same ids the failed attempt would have.
        result = live.apply(_batch(1, [Insert(3.0, 3.0), Insert(4.0, 4.0)]))
        assert result.inserted_ids == (6, 7)
        live.check_consistency(SPACE)


class TestIncrementalDifferential:
    @pytest.mark.parametrize("seed", range(6))
    def test_incremental_matches_rebuild_and_brute_force(self, seed):
        rng = random.Random(seed * 997 + 1)
        live = _live(n=15, seed=seed)
        next_id = 15
        alive = set(range(15))
        for seq in range(12):
            events = []
            for _ in range(rng.randint(1, 4)):
                if rng.random() < 0.6 or len(alive) <= 2:
                    events.append(
                        Insert(rng.uniform(1, 9), rng.uniform(1, 9), payload=[1])
                    )
                    alive.add(next_id)
                    next_id += 1
                else:
                    victim = rng.choice(sorted(alive))
                    events.append(Delete(victim))
                    alive.discard(victim)
            live.apply(_batch(seq, events))

        # Reference: a LiveDataset constructed directly over the final
        # history (tombstones deleted after a from-scratch index build).
        rebuilt = LiveDataset(
            [live.point_of(i) for i in range(live.n_total)],
            [live.payload_of(i) for i in range(live.n_total)],
            space=SPACE,
        )
        dead = [i for i in range(live.n_total) if not live.is_alive(i)]
        if dead:
            rebuilt.apply(_batch(0, [Delete(i) for i in dead]))

        assert live.alive_ids() == rebuilt.alive_ids() == sorted(alive)
        for _ in range(8):
            x, y = rng.uniform(0, 8), rng.uniform(0, 8)
            rect = Rect(x, x + rng.uniform(0.5, 3.0), y, y + rng.uniform(0.5, 3.0))
            agreed = live.check_consistency(rect)
            assert agreed == rebuilt.check_consistency(rect) == _brute(live, rect)


class TestSnapshot:
    def test_snapshot_compacts_and_maps_external_ids(self):
        live = _live(n=5)
        live.apply(_batch(0, [Delete(1), Insert(7.0, 7.0, payload=[9])]))
        points, ids, fn = live.snapshot()
        assert ids == [0, 2, 3, 4, 5]
        assert len(points) == 5
        assert points[-1] == Point(7.0, 7.0)
        # The function is built over compacted payloads: singleton {9} at
        # the last compacted position.
        assert fn.value(frozenset([4])) == 1.0

    def test_snapshot_is_isolated_from_later_mutations(self):
        live = _live(n=5)
        points, ids, _ = live.snapshot()
        live.apply(_batch(0, [Delete(0)]))
        assert len(points) == 5 and ids[0] == 0

    def test_unknown_id_lookups_raise(self):
        live = _live(n=3)
        with pytest.raises(IngestError):
            live.point_of(99)
        with pytest.raises(IngestError):
            live.payload_of(-1)


class TestBBox:
    def test_degenerate_boxes_are_allowed(self):
        box = BBox(1.0, 1.0, 2.0, 2.0)
        assert box.touches_rect(Rect(0.0, 1.0, 1.0, 2.0))  # boundary counts

    def test_rejects_inverted_boxes(self):
        with pytest.raises(ValueError):
            BBox(2.0, 1.0, 0.0, 0.0)

    def test_union_and_of_points(self):
        box = BBox.of_points([Point(1, 5), Point(3, 2)])
        assert box.as_tuple() == (1.0, 3.0, 2.0, 5.0)
        assert box.union(BBox(0.0, 0.5, 7.0, 8.0)).as_tuple() == (0.0, 3.0, 2.0, 8.0)

    def test_disjoint_rect_does_not_touch(self):
        assert not BBox(0.0, 1.0, 0.0, 1.0).touches_rect(Rect(2.0, 3.0, 2.0, 3.0))
