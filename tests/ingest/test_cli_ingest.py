"""Tests for the ``repro-brs ingest`` command family."""

import json

import pytest

from repro.cli import main
from repro.io.json_io import load_dataset


@pytest.fixture()
def dataset_file(tmp_path):
    from repro.datasets.registry import yelp_like
    from repro.io.json_io import save_dataset

    path = tmp_path / "ds.json"
    save_dataset(yelp_like(n_objects=80, seed=11), path)
    return str(path)


@pytest.fixture()
def wal_file(tmp_path):
    return str(tmp_path / "wal.jsonl")


class TestAppend:
    def test_insert_flag_appends_durably(self, dataset_file, wal_file, capsys):
        code = main(
            [
                "ingest", "append", dataset_file,
                "--log", wal_file, "--insert", "1.0,2.0,food+cheap",
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "seq=0" in printed and "visible" in printed
        assert "81 objects alive" in printed

    def test_events_file_and_delete_flag(self, dataset_file, wal_file, tmp_path, capsys):
        events = tmp_path / "events.json"
        events.write_text(json.dumps([["ins", 3.0, 4.0, ["bar"]]]))
        code = main(
            [
                "ingest", "append", dataset_file,
                "--log", wal_file, "--events", str(events), "--delete", "0",
            ]
        )
        assert code == 0
        assert "2 events" in capsys.readouterr().out

    def test_empty_append_is_a_usage_error(self, dataset_file, wal_file):
        assert main(["ingest", "append", dataset_file, "--log", wal_file]) != 0

    def test_bad_insert_spec_is_a_usage_error(self, dataset_file, wal_file):
        code = main(
            [
                "ingest", "append", dataset_file,
                "--log", wal_file, "--insert", "not-a-point",
            ]
        )
        assert code != 0

    def test_failed_batch_exits_nonzero(self, dataset_file, wal_file, capsys):
        code = main(
            [
                "ingest", "append", dataset_file,
                "--log", wal_file, "--delete", "12345",
            ]
        )
        assert code != 0
        assert "failed" in capsys.readouterr().out

    def test_appends_accumulate_across_invocations(
        self, dataset_file, wal_file, capsys
    ):
        main(["ingest", "append", dataset_file, "--log", wal_file,
              "--insert", "1.0,1.0"])
        code = main(["ingest", "append", dataset_file, "--log", wal_file,
                     "--insert", "2.0,2.0"])
        assert code == 0
        assert "seq=1" in capsys.readouterr().out


class TestStatus:
    def test_status_reports_state_counts(self, dataset_file, wal_file, capsys):
        main(["ingest", "append", dataset_file, "--log", wal_file,
              "--insert", "1.0,1.0"])
        main(["ingest", "append", dataset_file, "--log", wal_file,
              "--delete", "99999"])
        capsys.readouterr()
        assert main(["ingest", "status", "--log", wal_file]) == 0
        printed = capsys.readouterr().out
        assert "2 batches" in printed
        assert "applied: 1" in printed
        assert "failed: 1" in printed

    def test_status_of_missing_log_is_empty(self, wal_file, capsys):
        assert main(["ingest", "status", "--log", wal_file]) == 0
        assert "0 batches" in capsys.readouterr().out

    def test_corrupt_log_exits_with_bad_input(self, wal_file, tmp_path, capsys):
        with open(wal_file, "w") as fh:
            fh.write('{"kind": "junk"}\n{"also": "junk"}\n')
        assert main(["ingest", "status", "--log", wal_file]) == 2


class TestReplay:
    def test_replay_writes_recovered_dataset(
        self, dataset_file, wal_file, tmp_path, capsys
    ):
        main(["ingest", "append", dataset_file, "--log", wal_file,
              "--insert", "1.0,2.0,food", "--delete", "3"])
        out = tmp_path / "recovered.json"
        capsys.readouterr()
        code = main(
            ["ingest", "replay", dataset_file, "--log", wal_file,
             "--out", str(out)]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "replayed 1 batches" in printed
        recovered = load_dataset(str(out))
        assert len(recovered.points) == 80  # 80 + 1 insert - 1 delete
        assert recovered.name == "recovered"
