"""Tests for tag-assignment generators."""

import pytest

from repro.datasets.synthetic import uniform_points
from repro.datasets.tags import localized_tag_sets, shared_tag_sets, zipf_tag_sets
from repro.geometry.rect import Rect

SPACE = Rect(0, 100, 0, 100)


class TestZipfTagSets:
    def test_count_and_nonempty(self):
        tags = zipf_tag_sets(200, n_categories=50, mean_tags=3.0, seed=1)
        assert len(tags) == 200
        assert all(tags_i for tags_i in tags)

    def test_tags_in_vocabulary(self):
        tags = zipf_tag_sets(100, n_categories=20, mean_tags=2.0, seed=2)
        assert all(0 <= t < 20 for tags_i in tags for t in tags_i)

    def test_skew_favors_low_ranks(self):
        tags = zipf_tag_sets(2000, n_categories=100, mean_tags=3.0, exponent=1.5, seed=3)
        counts = [0] * 100
        for tags_i in tags:
            for t in tags_i:
                counts[t] += 1
        assert sum(counts[:10]) > sum(counts[50:60]) * 3

    def test_deterministic(self):
        assert zipf_tag_sets(50, 30, 2.0, seed=4) == zipf_tag_sets(50, 30, 2.0, seed=4)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            zipf_tag_sets(0, 10, 2.0)
        with pytest.raises(ValueError):
            zipf_tag_sets(10, 10, 0.0)


class TestSharedTagSets:
    def test_heavy_overlap_between_objects(self):
        tags = shared_tag_sets(300, seed=5)
        overlaps = [len(tags[i] & tags[i + 1]) for i in range(0, 200, 2)]
        # Random object pairs share several tags on average (the common
        # pool), which is exactly what makes Meetup's bounds loose.
        assert sum(overlaps) / len(overlaps) >= 5.0

    def test_vocab_partition(self):
        tags = shared_tag_sets(50, n_common=10, n_rare=100, seed=6)
        assert all(0 <= t < 110 for tags_i in tags for t in tags_i)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            shared_tag_sets(0)
        with pytest.raises(ValueError):
            shared_tag_sets(10, common_per_object=0.0)


class TestLocalizedTagSets:
    def test_spatial_autocorrelation(self):
        """Near neighbours share more tags than far pairs."""
        pts = uniform_points(600, SPACE, seed=7)
        tags = localized_tag_sets(pts, SPACE, seed=8)
        near_overlap, far_overlap, near_n, far_n = 0, 0, 0, 0
        for i in range(0, 400):
            for j in range(i + 1, min(i + 20, 600)):
                d = pts[i].distance_to(pts[j])
                shared = len(tags[i] & tags[j])
                if d < 3:
                    near_overlap += shared
                    near_n += 1
                elif d > 40:
                    far_overlap += shared
                    far_n += 1
        assert near_n and far_n
        assert near_overlap / near_n > 2 * (far_overlap / far_n + 1e-9)

    def test_count_matches_points(self):
        pts = uniform_points(40, SPACE, seed=9)
        assert len(localized_tag_sets(pts, SPACE, seed=10)) == 40

    def test_rejects_empty_points(self):
        with pytest.raises(ValueError):
            localized_tag_sets([], SPACE)

    def test_rejects_bad_monoculture(self):
        pts = uniform_points(5, SPACE, seed=11)
        with pytest.raises(ValueError):
            localized_tag_sets(pts, SPACE, monoculture=1.5)

    def test_deterministic(self):
        pts = uniform_points(30, SPACE, seed=12)
        assert localized_tag_sets(pts, SPACE, seed=13) == localized_tag_sets(
            pts, SPACE, seed=13
        )
