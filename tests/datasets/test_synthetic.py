"""Tests for synthetic point generators."""

import pytest

from repro.datasets.synthetic import gaussian_mixture_points, uniform_points
from repro.geometry.rect import Rect

SPACE = Rect(0, 100, 0, 50)


class TestUniformPoints:
    def test_count_and_bounds(self):
        pts = uniform_points(500, SPACE, seed=1)
        assert len(pts) == 500
        assert all(0 <= p.x <= 100 and 0 <= p.y <= 50 for p in pts)

    def test_deterministic(self):
        assert uniform_points(50, SPACE, seed=7) == uniform_points(50, SPACE, seed=7)

    def test_different_seeds_differ(self):
        assert uniform_points(50, SPACE, seed=1) != uniform_points(50, SPACE, seed=2)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            uniform_points(0, SPACE)


class TestGaussianMixturePoints:
    def test_count_and_open_interior(self):
        pts = gaussian_mixture_points(400, SPACE, seed=2)
        assert len(pts) == 400
        assert all(0 < p.x < 100 and 0 < p.y < 50 for p in pts)

    def test_deterministic(self):
        assert gaussian_mixture_points(60, SPACE, seed=3) == gaussian_mixture_points(
            60, SPACE, seed=3
        )

    def test_clustering_is_denser_than_uniform(self):
        """Max local density should clearly exceed the uniform baseline."""
        from repro.index.grid import GridIndex

        clustered = gaussian_mixture_points(
            2000, SPACE, n_clusters=3, cluster_std_frac=0.02, uniform_frac=0.0, seed=4
        )
        uniform = uniform_points(2000, SPACE, seed=4)

        def max_cell_count(points):
            grid = GridIndex(points, cell_size=5.0)
            return max(len(grid.query_center(p, 5.0, 5.0)) for p in points[:200])

        assert max_cell_count(clustered) > 2 * max_cell_count(uniform)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            gaussian_mixture_points(10, SPACE, uniform_frac=1.5)

    def test_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            gaussian_mixture_points(0, SPACE)
        with pytest.raises(ValueError):
            gaussian_mixture_points(10, SPACE, n_clusters=0)

    def test_all_uniform_fraction(self):
        pts = gaussian_mixture_points(100, SPACE, uniform_frac=1.0, seed=5)
        assert len(pts) == 100
