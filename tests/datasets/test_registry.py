"""Tests for the dataset registry and query sizing."""

import math

import pytest

from repro.datasets.registry import (
    DATASET_BUILDERS,
    brightkite_like,
    load,
    meetup_like,
    query_size,
    scalability_dataset,
    yelp_like,
)
from repro.geometry.rect import Rect


class TestQuerySize:
    def test_unit_query_area(self):
        """q has area Width*Height/|O| (Section 6.1)."""
        space = Rect(0, 100, 0, 50)
        a, b = query_size(space, n_objects=1000, k=1)
        assert a * b == pytest.approx(space.area / 1000)

    def test_k_scales_area(self):
        space = Rect(0, 100, 0, 100)
        a1, b1 = query_size(space, 500, k=1)
        a10, b10 = query_size(space, 500, k=10)
        assert a10 * b10 == pytest.approx(10 * a1 * b1)

    def test_default_aspect_matches_space(self):
        space = Rect(0, 200, 0, 50)
        a, b = query_size(space, 100, k=5)
        assert a / b == pytest.approx(space.height / space.width)

    def test_explicit_aspect(self):
        space = Rect(0, 100, 0, 100)
        a, b = query_size(space, 100, k=5, aspect=2.0)
        assert a / b == pytest.approx(2.0)

    def test_rejects_bad_inputs(self):
        space = Rect(0, 1, 0, 1)
        with pytest.raises(ValueError):
            query_size(space, 0, 1)
        with pytest.raises(ValueError):
            query_size(space, 10, 0)
        with pytest.raises(ValueError):
            query_size(space, 10, 1, aspect=-1)


class TestRegistry:
    def test_load_known_names(self):
        for name in DATASET_BUILDERS:
            ds = load(name)
            assert ds.points
            assert ds.space.contains_rect(ds.space)

    def test_load_unknown_name(self):
        with pytest.raises(KeyError, match="available"):
            load("nope")

    def test_diversity_datasets_have_tags(self):
        for build in (yelp_like, meetup_like):
            ds = build()
            assert len(ds.tag_sets) == len(ds.points)
            fn = ds.score_function()
            assert fn.value([0]) >= 1.0

    def test_yelp_density_diversity_anticorrelation(self):
        """The most crowded region must not be the most diverse one."""
        from repro.core.maxrs import oe_maxrs
        from repro.core.slicebrs import SliceBRS

        ds = yelp_like(n_objects=1500, seed=3)
        fn = ds.score_function()
        a, b = ds.query(10)
        diverse = SliceBRS().solve(ds.points, fn, a, b)
        crowded = oe_maxrs(ds.points, a, b)
        assert fn.value(crowded.object_ids) < diverse.score

    def test_influence_dataset_wiring(self):
        ds = brightkite_like(n_objects=400, n_users=120, seed=5)
        assert ds.checkins.n_pois == 400
        assert ds.graph.n_users == 120
        fn = ds.score_function(n_rr_sets=200, seed=1)
        assert fn.n_objects == 400
        # Cached: same arguments return the identical object.
        assert ds.score_function(n_rr_sets=200, seed=1) is fn

    def test_scalability_dataset_shape(self):
        ds = scalability_dataset(800, seed=7)
        assert len(ds.points) == 800
        assert all(t < 388 for tags in ds.tag_sets for t in tags)

    def test_determinism(self):
        d1 = yelp_like(n_objects=300, seed=9)
        d2 = yelp_like(n_objects=300, seed=9)
        assert d1.points == d2.points
        assert d1.tag_sets == d2.tag_sets


class TestMeetupFlat:
    """The extreme-aspect regime of the paper's actual Meetup crawl."""

    def test_space_is_extremely_flat(self):
        from repro.datasets.registry import meetup_flat_like

        ds = meetup_flat_like(n_objects=300, seed=1)
        assert ds.space.width / ds.space.height > 1000

    def test_query_follows_space_aspect(self):
        from repro.datasets.registry import meetup_flat_like

        ds = meetup_flat_like(n_objects=300, seed=1)
        a, b = ds.query(10)
        assert b / a > 1000  # ribbon-shaped query rectangles

    def test_solvers_handle_ribbon_queries(self):
        from repro.core.coverbrs import CoverBRS
        from repro.core.slicebrs import SliceBRS
        from repro.datasets.registry import meetup_flat_like

        ds = meetup_flat_like(n_objects=400, seed=2)
        fn = ds.score_function()
        a, b = ds.query(10)
        exact = SliceBRS().solve(ds.points, fn, a, b)
        cover = CoverBRS(c=1 / 3).solve(ds.points, fn, a, b)
        assert exact.score > 0
        assert 0.25 * exact.score - 1e-9 <= cover.score <= exact.score + 1e-9
