"""Tests for social graph and check-in generators."""

import pytest

from repro.datasets.social import (
    directed_friendships,
    local_checkins,
    preferential_attachment_edges,
)
from repro.datasets.synthetic import uniform_points
from repro.geometry.rect import Rect

SPACE = Rect(0, 100, 0, 100)


class TestPreferentialAttachment:
    def test_connected_and_sized(self):
        edges = preferential_attachment_edges(100, edges_per_user=3, seed=1)
        touched = {u for e in edges for u in e}
        assert touched == set(range(100))

    def test_heavy_tail(self):
        """Max degree should far exceed the median (power-law-ish)."""
        edges = preferential_attachment_edges(400, edges_per_user=2, seed=2)
        degree = [0] * 400
        for u, v in edges:
            degree[u] += 1
            degree[v] += 1
        degree.sort()
        assert degree[-1] >= 4 * degree[200]

    def test_small_graphs(self):
        for n in (1, 2, 3):
            edges = preferential_attachment_edges(n, edges_per_user=3, seed=3)
            assert all(0 <= u < n and 0 <= v < n for u, v in edges)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            preferential_attachment_edges(0)
        with pytest.raises(ValueError):
            preferential_attachment_edges(10, edges_per_user=0)

    def test_deterministic(self):
        assert preferential_attachment_edges(50, seed=4) == (
            preferential_attachment_edges(50, seed=4)
        )


class TestDirectedFriendships:
    def test_both_directions(self):
        assert directed_friendships([(0, 1)]) == [(0, 1), (1, 0)]


class TestLocalCheckins:
    def test_every_user_checks_in(self):
        pois = uniform_points(60, SPACE, seed=5)
        visits = local_checkins(pois, n_users=20, seed=6)
        assert {u for u, _ in visits} == set(range(20))

    def test_visits_reference_valid_pois(self):
        pois = uniform_points(60, SPACE, seed=7)
        visits = local_checkins(pois, n_users=15, seed=8)
        assert all(0 <= poi < 60 for _, poi in visits)

    def test_checkins_are_local(self):
        """A user's check-ins cluster around one home location."""
        pois = uniform_points(500, SPACE, seed=9)
        visits = local_checkins(pois, n_users=30, home_radius_frac=0.05, seed=10)
        per_user = {}
        for u, poi in visits:
            per_user.setdefault(u, []).append(pois[poi])
        for locations in per_user.values():
            xs = [p.x for p in locations]
            ys = [p.y for p in locations]
            assert max(xs) - min(xs) <= 10.0 + 1e-9
            assert max(ys) - min(ys) <= 10.0 + 1e-9

    def test_explicit_homes(self):
        from repro.geometry.point import Point

        # Enough POIs that every home has neighbours (no random fallback).
        pois = uniform_points(500, SPACE, seed=11)
        homes = [Point(50.0, 50.0)] * 5
        visits = local_checkins(pois, 5, homes=homes, home_radius_frac=0.05, seed=12)
        for _, poi in visits:
            assert pois[poi].chebyshev_to(Point(50, 50)) < 5.0

    def test_home_count_mismatch(self):
        from repro.geometry.point import Point

        pois = uniform_points(10, SPACE, seed=13)
        with pytest.raises(ValueError):
            local_checkins(pois, 3, homes=[Point(0, 0)], seed=14)

    def test_rejects_bad_parameters(self):
        pois = uniform_points(10, SPACE, seed=15)
        with pytest.raises(ValueError):
            local_checkins([], 5)
        with pytest.raises(ValueError):
            local_checkins(pois, 0)
        with pytest.raises(ValueError):
            local_checkins(pois, 5, mean_checkins=0.0)
