"""Tests for the benchmark harness utilities and shape checks."""

import pytest

from repro.bench.harness import Table, format_table, run_with_status, timed
from repro.runtime.budget import Budget, ambient_budget
from repro.runtime.errors import EvaluationError


class TestTimed:
    def test_returns_result_and_duration(self):
        result, seconds = timed(lambda: 41 + 1)
        assert result == 42
        assert seconds >= 0.0

    def test_budget_is_installed_ambiently(self):
        budget = Budget(max_evals=5)
        seen, _ = timed(ambient_budget, budget=budget)
        assert seen is budget
        assert ambient_budget() is None  # scope restored


class TestRunWithStatus:
    def test_ok_run(self):
        outcome = run_with_status(lambda: "fine")
        assert outcome.status == "ok"
        assert outcome.result == "fine"
        assert outcome.error is None

    def test_error_is_captured_not_raised(self):
        def explode():
            raise EvaluationError("backend down")

        outcome = run_with_status(explode)
        assert outcome.status == "error"
        assert outcome.result is None
        assert "EvaluationError" in outcome.error
        assert "backend down" in outcome.error

    def test_unexpected_exception_also_captured(self):
        def explode():
            raise RuntimeError("surprise")

        outcome = run_with_status(explode)
        assert outcome.status == "error"
        assert "RuntimeError" in outcome.error

    def test_anytime_statuses_propagate(self):
        class Fake:
            def __init__(self, status):
                self.status = status

        assert run_with_status(lambda: Fake("timeout")).status == "timeout"
        assert run_with_status(lambda: Fake("degraded")).status == "degraded"
        assert run_with_status(
            lambda: [Fake("ok"), Fake("degraded")]
        ).status == "degraded"

    def test_budget_bounds_budget_aware_work(self):
        from repro.core.brs import best_region
        from repro.functions.coverage import CoverageFunction
        from repro.geometry.point import Point

        points = [Point(float(i % 50), float(i // 50)) for i in range(500)]
        f = CoverageFunction([{i % 7} for i in range(500)])
        outcome = run_with_status(
            lambda: best_region(points, f, 3.0, 3.0),
            budget=Budget(max_evals=10),
        )
        assert outcome.status in ("degraded", "timeout")


class TestFormatTable:
    def test_contains_title_headers_and_rows(self):
        text = format_table("My Title", ("col_a", "col_b"), [(1, 2.5), (30, "x")])
        assert "My Title" in text
        assert "col_a" in text and "col_b" in text
        assert "30" in text and "2.5" in text

    def test_thousands_separator(self):
        text = format_table("t", ("n",), [(1234567,)])
        assert "1,234,567" in text

    def test_notes_rendered(self):
        text = format_table("t", ("n",), [(1,)], notes=["be careful"])
        assert "note: be careful" in text

    def test_empty_rows(self):
        text = format_table("t", ("a", "b"), [])
        assert "a" in text

    def test_table_render_includes_experiment(self):
        table = Table("Figure 99", "demo", ("x",), [(1,)])
        assert table.render().startswith("Figure 99 — demo")


class TestShapeChecks:
    def test_table4_check_flags_bad_ratio(self):
        from repro.bench.experiments import SHAPE_CHECKS

        bad = Table("Table 4", "t", ("d", "#DR", "#MR", "r"),
                    [("x", 100, 90, "90%")])
        failures = SHAPE_CHECKS["table4"]([bad])
        assert failures and "#MR" in failures[0]

    def test_table4_check_passes_good_ratio(self):
        from repro.bench.experiments import SHAPE_CHECKS

        good = Table("Table 4", "t", ("d", "#DR", "#MR", "r"),
                     [("x", 100000, 500, "0.5%")])
        assert SHAPE_CHECKS["table4"]([good]) == []

    def test_table5_check_requires_meetup_worst(self):
        from repro.bench.experiments import SHAPE_CHECKS

        rows = [
            ("meetup_like", 1, 100, 5, 1, "5%"),
            ("yelp_like", 1, 100, 40, 1, "40%"),
        ]
        failures = SHAPE_CHECKS["table5"]([Table("Table 5", "t", ("",) * 6, rows)])
        assert any("meetup" in f for f in failures)

    def test_fig19_check(self):
        from repro.bench.experiments import SHAPE_CHECKS

        good = Table("Figure 19", "t", ("aspect", "s", "c4", "c9"),
                     [("1:3", 0.1, 0, 0), ("1:1", 0.3, 0, 0), ("3:1", 0.1, 0, 0)])
        assert SHAPE_CHECKS["fig19"]([good]) == []
        bad = Table("Figure 19", "t", ("aspect", "s", "c4", "c9"),
                    [("1:3", 0.5, 0, 0), ("1:1", 0.3, 0, 0), ("3:1", 0.1, 0, 0)])
        assert SHAPE_CHECKS["fig19"]([bad])
