"""Tests for CappedSumFunction and FacilityLocationFunction."""

import random

import pytest

from repro.functions.saturating import CappedSumFunction, FacilityLocationFunction
from repro.functions.validate import check_submodular_monotone


class TestCappedSum:
    def test_below_cap_behaves_like_sum(self):
        fn = CappedSumFunction(3, cap=100.0, weights=[1.0, 2.0, 4.0])
        assert fn.value([0, 2]) == 5.0

    def test_saturates_at_cap(self):
        fn = CappedSumFunction(3, cap=5.0, weights=[4.0, 4.0, 4.0])
        assert fn.value([0]) == 4.0
        assert fn.value([0, 1]) == 5.0
        assert fn.value([0, 1, 2]) == 5.0

    def test_rejects_negative_cap_or_weights(self):
        with pytest.raises(ValueError):
            CappedSumFunction(1, cap=-1.0)
        with pytest.raises(ValueError):
            CappedSumFunction(1, cap=1.0, weights=[-2.0])

    def test_rejects_weight_mismatch(self):
        with pytest.raises(ValueError):
            CappedSumFunction(2, cap=1.0, weights=[1.0])

    def test_is_submodular_monotone(self):
        fn = CappedSumFunction(10, cap=3.5, weights=[0.5 + 0.1 * i for i in range(10)])
        check_submodular_monotone(fn, range(10), trials=200)

    def test_evaluator_matches_batch(self):
        rng = random.Random(3)
        weights = [rng.uniform(0, 2) for _ in range(8)]
        fn = CappedSumFunction(8, cap=4.0, weights=weights)
        ev = fn.evaluator()
        active = []
        for _ in range(200):
            if active and rng.random() < 0.45:
                victim = active.pop(rng.randrange(len(active)))
                ev.pop(victim)
            else:
                obj = rng.randrange(8)
                active.append(obj)
                ev.push(obj)
            assert ev.value == pytest.approx(fn.value(active))

    def test_evaluator_pop_missing(self):
        ev = CappedSumFunction(1, cap=1.0).evaluator()
        with pytest.raises(KeyError):
            ev.pop(0)


class TestFacilityLocation:
    def test_empty_selection(self):
        fn = FacilityLocationFunction([[1.0, 2.0]])
        assert fn.value(()) == 0.0

    def test_clients_take_their_best(self):
        fn = FacilityLocationFunction([[1.0, 3.0], [2.0, 0.5]])
        assert fn.value([0]) == 3.0   # 1 + 2
        assert fn.value([1]) == 3.5   # 3 + 0.5
        assert fn.value([0, 1]) == 5.0  # 3 + 2

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            FacilityLocationFunction([[1.0], [1.0, 2.0]])

    def test_rejects_negative_utilities(self):
        with pytest.raises(ValueError):
            FacilityLocationFunction([[1.0, -0.1]])

    def test_is_submodular_monotone(self):
        rng = random.Random(5)
        utilities = [[rng.uniform(0, 3) for _ in range(8)] for _ in range(5)]
        fn = FacilityLocationFunction(utilities)
        check_submodular_monotone(fn, range(8), trials=200)

    def test_evaluator_matches_batch(self):
        rng = random.Random(7)
        utilities = [[rng.uniform(0, 3) for _ in range(6)] for _ in range(4)]
        fn = FacilityLocationFunction(utilities)
        ev = fn.evaluator()
        active = []
        for _ in range(300):
            if active and rng.random() < 0.5:
                victim = active.pop(rng.randrange(len(active)))
                ev.pop(victim)
            else:
                obj = rng.randrange(6)
                active.append(obj)
                ev.push(obj)
            assert ev.value == pytest.approx(fn.value(active))

    def test_evaluator_pop_champion_recomputes(self):
        """Removing a client's best facility falls back to the runner-up."""
        fn = FacilityLocationFunction([[5.0, 3.0, 1.0]])
        ev = fn.evaluator()
        ev.push(0)
        ev.push(1)
        assert ev.value == 5.0
        ev.pop(0)
        assert ev.value == 3.0
        ev.pop(1)
        assert ev.value == 0.0

    def test_works_with_slicebrs(self):
        """End to end: a facility-location BRS query is exact."""
        from repro.core.naive import NaiveBRS
        from repro.core.slicebrs import SliceBRS
        from repro.geometry.point import Point

        rng = random.Random(11)
        points = [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(15)]
        utilities = [[rng.uniform(0, 2) for _ in range(15)] for _ in range(4)]
        fn = FacilityLocationFunction(utilities)
        exact = SliceBRS().solve(points, fn, a=2.5, b=2.5)
        naive = NaiveBRS().solve(points, fn, a=2.5, b=2.5)
        assert exact.score == pytest.approx(naive.score)
