"""Tests for the reduced function f_T over a c-cover (Definition 8)."""

import random

from repro.functions.coverage import CoverageFunction
from repro.functions.reduced import UnionReducedFunction, reduce_over_cover
from repro.functions.validate import check_submodular_monotone
from repro.functions.weighted_sum import SumFunction


class TestUnionReducedFunction:
    def test_union_evaluation(self):
        base = SumFunction(4, [1.0, 2.0, 4.0, 8.0])
        f_t = UnionReducedFunction(base, [[0, 1], [2], [3]])
        assert f_t.value([0]) == 3.0
        assert f_t.value([0, 2]) == 11.0

    def test_overlapping_groups_count_once(self):
        base = SumFunction(2, [1.0, 10.0])
        f_t = UnionReducedFunction(base, [[0, 1], [1]])
        assert f_t.value([0, 1]) == 11.0  # object 1 counted once

    def test_group_of(self):
        f_t = UnionReducedFunction(SumFunction(3), [[0], [1, 2]])
        assert tuple(f_t.group_of(1)) == (1, 2)

    def test_preserves_submodular_monotone(self):
        rng = random.Random(2)
        labels = [set(rng.sample(range(12), rng.randint(1, 4))) for _ in range(10)]
        base = CoverageFunction(labels)
        groups = [[0, 1, 2], [3, 4], [5], [6, 7, 8, 9]]
        check_submodular_monotone(
            UnionReducedFunction(base, groups), range(len(groups)), trials=200
        )


class TestReduceOverCover:
    def test_coverage_fast_path(self):
        base = CoverageFunction([{"a"}, {"b"}, {"a", "c"}])
        reduced = reduce_over_cover(base, [[0, 2], [1]])
        assert isinstance(reduced, CoverageFunction)
        assert reduced.value([0]) == 2.0  # {a, c}
        assert reduced.value([0, 1]) == 3.0

    def test_sum_fast_path(self):
        base = SumFunction(3, [1.0, 2.0, 4.0])
        reduced = reduce_over_cover(base, [[0, 1], [2]])
        assert isinstance(reduced, SumFunction)
        assert reduced.value([0]) == 3.0
        assert reduced.value([0, 1]) == 7.0

    def test_generic_fallback(self):
        from repro.functions.base import SetFunction

        class Cardinality(SetFunction):
            def value(self, objects):
                return float(len(set(objects)))

        reduced = reduce_over_cover(Cardinality(), [[0, 1]])
        assert isinstance(reduced, UnionReducedFunction)
        assert reduced.value([0]) == 2.0

    def test_fast_path_agrees_with_generic(self):
        rng = random.Random(8)
        labels = [set(rng.sample(range(15), rng.randint(1, 5))) for _ in range(12)]
        base = CoverageFunction(labels, label_weights={0: 2.0}, scale=1.5)
        groups = [[0, 3, 4], [1], [2, 5], [6, 7, 8], [9, 10, 11]]
        fast = reduce_over_cover(base, groups)
        slow = UnionReducedFunction(base, groups)
        for _ in range(50):
            subset = rng.sample(range(len(groups)), rng.randint(0, len(groups)))
            assert abs(fast.value(subset) - slow.value(subset)) < 1e-9
