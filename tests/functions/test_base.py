"""Tests for the SetFunction / IncrementalEvaluator contracts."""

import pytest

from repro.functions.base import RecomputeEvaluator, SetFunction


class _CardinalityFunction(SetFunction):
    """f(S) = |S| — the simplest submodular monotone function."""

    def __init__(self):
        self.calls = 0

    def value(self, objects):
        self.calls += 1
        return float(len(set(objects)))


class TestDefaultMarginal:
    def test_marginal_of_new_element(self):
        fn = _CardinalityFunction()
        assert fn.marginal(3, [1, 2]) == 1.0

    def test_marginal_of_present_element(self):
        fn = _CardinalityFunction()
        assert fn.marginal(1, [1, 2]) == 0.0


class TestRecomputeEvaluator:
    def test_starts_at_empty_value(self):
        ev = RecomputeEvaluator(_CardinalityFunction())
        assert ev.value == 0.0

    def test_push_pop_roundtrip(self):
        ev = RecomputeEvaluator(_CardinalityFunction())
        ev.push(1)
        ev.push(2)
        assert ev.value == 2.0
        ev.pop(1)
        assert ev.value == 1.0
        ev.pop(2)
        assert ev.value == 0.0

    def test_multiset_semantics(self):
        """Pushing an id twice requires popping twice before it leaves."""
        ev = RecomputeEvaluator(_CardinalityFunction())
        ev.push(7)
        ev.push(7)
        assert ev.value == 1.0
        ev.pop(7)
        assert ev.value == 1.0
        ev.pop(7)
        assert ev.value == 0.0

    def test_pop_missing_raises(self):
        ev = RecomputeEvaluator(_CardinalityFunction())
        with pytest.raises(KeyError):
            ev.pop(1)

    def test_pop_exhausted_raises(self):
        ev = RecomputeEvaluator(_CardinalityFunction())
        ev.push(1)
        ev.pop(1)
        with pytest.raises(KeyError):
            ev.pop(1)

    def test_lazy_recompute(self):
        """The base function is only re-evaluated when value is read."""
        fn = _CardinalityFunction()
        ev = RecomputeEvaluator(fn)
        calls_after_init = fn.calls
        for i in range(10):
            ev.push(i)
        assert fn.calls == calls_after_init  # no reads yet
        _ = ev.value
        assert fn.calls == calls_after_init + 1

    def test_reset(self):
        ev = RecomputeEvaluator(_CardinalityFunction())
        ev.push(1)
        ev.reset()
        assert ev.value == 0.0
        with pytest.raises(KeyError):
            ev.pop(1)

    def test_duplicate_push_does_not_dirty(self):
        fn = _CardinalityFunction()
        ev = RecomputeEvaluator(fn)
        ev.push(1)
        _ = ev.value
        calls = fn.calls
        ev.push(1)  # count 1 -> 2: distinct set unchanged
        _ = ev.value
        assert fn.calls == calls
