"""Tests for linear combinations of submodular functions."""

import random

import pytest

from repro.functions.composite import LinearCombinationFunction
from repro.functions.coverage import CoverageFunction
from repro.functions.validate import check_submodular_monotone
from repro.functions.weighted_sum import SumFunction


def _mixed(seed=0, n=10):
    rng = random.Random(seed)
    labels = [set(rng.sample(range(12), rng.randint(1, 4))) for _ in range(n)]
    diversity = CoverageFunction(labels)
    count = SumFunction(n)
    return LinearCombinationFunction([(0.8, diversity), (0.2, count)])


class TestLinearCombination:
    def test_empty_terms_rejected(self):
        with pytest.raises(ValueError):
            LinearCombinationFunction([])

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ValueError):
            LinearCombinationFunction([(-1.0, SumFunction(2))])

    def test_value_is_weighted_sum_of_components(self):
        fn = LinearCombinationFunction(
            [(2.0, SumFunction(3, [1, 1, 1])), (0.5, SumFunction(3, [4, 0, 0]))]
        )
        assert fn.value([0]) == 2.0 + 2.0
        assert fn.value([0, 1]) == 4.0 + 2.0

    def test_zero_coefficient_component_ignored(self):
        fn = LinearCombinationFunction(
            [(0.0, SumFunction(2, [100, 100])), (1.0, SumFunction(2))]
        )
        assert fn.value([0, 1]) == 2.0

    def test_preserves_submodular_monotone(self):
        check_submodular_monotone(_mixed(seed=1), range(10), trials=200)

    def test_evaluator_matches_batch(self):
        fn = _mixed(seed=2)
        ev = fn.evaluator()
        rng = random.Random(3)
        active = []
        for _ in range(200):
            if active and rng.random() < 0.45:
                victim = active.pop(rng.randrange(len(active)))
                ev.pop(victim)
            else:
                obj = rng.randrange(10)
                active.append(obj)
                ev.push(obj)
            assert ev.value == pytest.approx(fn.value(active))

    def test_works_end_to_end_with_solvers(self):
        from repro.core.naive import NaiveBRS
        from repro.core.slicebrs import SliceBRS
        from repro.geometry.point import Point

        rng = random.Random(5)
        points = [Point(rng.uniform(0, 8), rng.uniform(0, 8)) for _ in range(18)]
        labels = [set(rng.sample("abcdef", rng.randint(1, 3))) for _ in range(18)]
        fn = LinearCombinationFunction(
            [(1.0, CoverageFunction(labels)), (0.1, SumFunction(18))]
        )
        exact = SliceBRS().solve(points, fn, a=2.0, b=2.0)
        naive = NaiveBRS().solve(points, fn, a=2.0, b=2.0)
        assert exact.score == pytest.approx(naive.score)

    def test_mix_changes_the_winner(self):
        """A pure-count objective and a pure-diversity objective can pick
        different regions; the mix interpolates."""
        from repro.core.slicebrs import SliceBRS
        from repro.geometry.point import Point

        # Crowded monoculture vs a small diverse block.
        crowd = [Point(0.0 + 0.01 * i, 0.0) for i in range(6)]
        diverse = [Point(5.0, 5.0), Point(5.1, 5.1), Point(5.2, 5.0)]
        points = crowd + diverse
        labels = [{"x"}] * 6 + [{"a"}, {"b"}, {"c"}]
        diversity = CoverageFunction(labels)
        count = SumFunction(len(points))

        by_count = SliceBRS().solve(points, count, 1.0, 1.0)
        by_diversity = SliceBRS().solve(points, diversity, 1.0, 1.0)
        assert sorted(by_count.object_ids) == [0, 1, 2, 3, 4, 5]
        assert sorted(by_diversity.object_ids) == [6, 7, 8]

        heavy_count = LinearCombinationFunction([(0.1, diversity), (1.0, count)])
        assert sorted(
            SliceBRS().solve(points, heavy_count, 1.0, 1.0).object_ids
        ) == [0, 1, 2, 3, 4, 5]
