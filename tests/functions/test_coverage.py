"""Tests for CoverageFunction and its incremental evaluator."""

import random

import pytest

from repro.functions.coverage import CoverageFunction
from repro.functions.validate import check_submodular_monotone


class TestCoverageValue:
    def test_empty_set(self):
        fn = CoverageFunction([{"a"}, {"b"}])
        assert fn.value(()) == 0.0

    def test_union_semantics(self):
        fn = CoverageFunction([{"a", "b"}, {"b", "c"}, {"c"}])
        assert fn.value([0]) == 2.0
        assert fn.value([0, 1]) == 3.0
        assert fn.value([0, 1, 2]) == 3.0

    def test_duplicates_ignored(self):
        fn = CoverageFunction([{"a"}, {"b"}])
        assert fn.value([0, 0, 0]) == 1.0

    def test_weighted_labels(self):
        fn = CoverageFunction([{"a", "b"}], label_weights={"a": 3.0})
        assert fn.value([0]) == 4.0  # 3 (a) + default 1 (b)

    def test_scale(self):
        fn = CoverageFunction([{"a"}, {"b"}], scale=2.5)
        assert fn.value([0, 1]) == 5.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            CoverageFunction([{"a"}], label_weights={"a": -1.0})

    def test_negative_scale_rejected(self):
        with pytest.raises(ValueError):
            CoverageFunction([{"a"}], scale=-1.0)

    def test_marginal(self):
        fn = CoverageFunction([{"a", "b"}, {"b", "c"}])
        assert fn.marginal(1, [0]) == 1.0
        assert fn.marginal(1, []) == 2.0

    def test_is_submodular_monotone(self):
        rng = random.Random(5)
        labels = [set(rng.sample("abcdefghij", rng.randint(1, 4))) for _ in range(12)]
        check_submodular_monotone(CoverageFunction(labels), range(12), trials=200)

    def test_empty_label_set_contributes_nothing(self):
        fn = CoverageFunction([set(), {"a"}])
        assert fn.value([0]) == 0.0
        assert fn.value([0, 1]) == 1.0


class TestCoverageEvaluator:
    def test_matches_batch_value_under_random_ops(self):
        rng = random.Random(9)
        labels = [frozenset(rng.sample(range(20), rng.randint(1, 5))) for _ in range(15)]
        fn = CoverageFunction(labels, label_weights={3: 2.0, 7: 0.5})
        ev = fn.evaluator()
        active = []
        for _ in range(300):
            if active and rng.random() < 0.45:
                victim = active.pop(rng.randrange(len(active)))
                ev.pop(victim)
            else:
                obj = rng.randrange(15)
                active.append(obj)
                ev.push(obj)
            assert ev.value == pytest.approx(fn.value(active))

    def test_multiset_pop_order_independent(self):
        fn = CoverageFunction([{"a"}, {"a", "b"}])
        ev = fn.evaluator()
        ev.push(0)
        ev.push(1)
        ev.push(0)
        ev.pop(0)
        assert ev.value == 2.0  # 'a' still covered twice over
        ev.pop(1)
        assert ev.value == 1.0
        ev.pop(0)
        assert ev.value == 0.0

    def test_pop_missing_raises(self):
        ev = CoverageFunction([{"a"}]).evaluator()
        with pytest.raises(KeyError):
            ev.pop(0)

    def test_reset(self):
        ev = CoverageFunction([{"a"}]).evaluator()
        ev.push(0)
        ev.reset()
        assert ev.value == 0.0


class TestMerged:
    def test_groups_cover_union_of_labels(self):
        fn = CoverageFunction([{"a"}, {"b"}, {"c"}])
        merged = fn.merged([[0, 1], [2]])
        assert merged.value([0]) == 2.0
        assert merged.value([1]) == 1.0
        assert merged.value([0, 1]) == 3.0

    def test_empty_group(self):
        merged = CoverageFunction([{"a"}]).merged([[], [0]])
        assert merged.value([0]) == 0.0
        assert merged.value([1]) == 1.0

    def test_preserves_weights_and_scale(self):
        fn = CoverageFunction([{"a"}, {"b"}], label_weights={"a": 5.0}, scale=2.0)
        merged = fn.merged([[0, 1]])
        assert merged.value([0]) == 12.0  # 2 * (5 + 1)
