"""Tests for SumFunction (the MaxRS special case)."""

import pytest

from repro.functions.weighted_sum import SumFunction


class TestSumFunction:
    def test_default_unit_weights(self):
        fn = SumFunction(4)
        assert fn.value([0, 1, 2]) == 3.0

    def test_explicit_weights(self):
        fn = SumFunction(3, [1.0, 2.0, 4.0])
        assert fn.value([0, 2]) == 5.0

    def test_duplicates_ignored(self):
        fn = SumFunction(2, [3.0, 1.0])
        assert fn.value([0, 0]) == 3.0

    def test_weight_count_mismatch(self):
        with pytest.raises(ValueError):
            SumFunction(3, [1.0])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            SumFunction(2, [1.0, -0.5])

    def test_marginal(self):
        fn = SumFunction(3, [1.0, 2.0, 4.0])
        assert fn.marginal(2, [0]) == 4.0
        assert fn.marginal(0, [0]) == 0.0

    def test_weights_property_read_only_copy(self):
        fn = SumFunction(2, [1.0, 2.0])
        assert fn.weights == (1.0, 2.0)

    def test_weight_of(self):
        assert SumFunction(2, [1.5, 2.5]).weight_of(1) == 2.5


class TestSumEvaluator:
    def test_push_pop(self):
        ev = SumFunction(3, [1.0, 2.0, 4.0]).evaluator()
        ev.push(0)
        ev.push(2)
        assert ev.value == 5.0
        ev.pop(0)
        assert ev.value == 4.0

    def test_multiset(self):
        ev = SumFunction(1, [3.0]).evaluator()
        ev.push(0)
        ev.push(0)
        assert ev.value == 3.0
        ev.pop(0)
        assert ev.value == 3.0
        ev.pop(0)
        assert ev.value == 0.0

    def test_pop_missing_raises(self):
        ev = SumFunction(1).evaluator()
        with pytest.raises(KeyError):
            ev.pop(0)

    def test_reset(self):
        ev = SumFunction(1).evaluator()
        ev.push(0)
        ev.reset()
        assert ev.value == 0.0
