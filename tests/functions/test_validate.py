"""Tests for the submodular-monotone spot checker (failure injection)."""

import pytest

from repro.functions.base import SetFunction
from repro.functions.validate import check_submodular_monotone
from repro.functions.coverage import CoverageFunction


class _Supermodular(SetFunction):
    """f(S) = |S|^2 — monotone but supermodular (increasing returns)."""

    def value(self, objects):
        return float(len(set(objects)) ** 2)


class _NonMonotone(SetFunction):
    """f(S) alternates with parity — not monotone."""

    def value(self, objects):
        return float(len(set(objects)) % 2)


class _NegativeEmpty(SetFunction):
    def value(self, objects):
        return float(len(set(objects))) - 1.0


class TestCheckSubmodularMonotone:
    def test_accepts_coverage(self):
        fn = CoverageFunction([{"a", "b"}, {"b"}, {"c"}])
        check_submodular_monotone(fn, [0, 1, 2], trials=100)

    def test_rejects_supermodular(self):
        with pytest.raises(ValueError, match="submodularity"):
            check_submodular_monotone(_Supermodular(), range(8), trials=200)

    def test_rejects_non_monotone(self):
        with pytest.raises(ValueError, match="monotonicity|submodularity"):
            check_submodular_monotone(_NonMonotone(), range(8), trials=200)

    def test_rejects_negative_empty_value(self):
        with pytest.raises(ValueError, match="emptyset"):
            check_submodular_monotone(_NegativeEmpty(), range(4))

    def test_trivial_domains_pass(self):
        check_submodular_monotone(CoverageFunction([{"a"}]), [0])
        check_submodular_monotone(CoverageFunction([]), [])

    def test_deterministic_with_seeded_rng(self):
        import random

        fn = CoverageFunction([{"a"}, {"b"}, {"a", "b"}])
        check_submodular_monotone(fn, [0, 1, 2], trials=50, rng=random.Random(1))
