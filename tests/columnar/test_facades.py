"""Facade contract: lazy cached columns(), invalidation, batch_value."""

import numpy as np
import pytest

from repro.columnar.dataset import ColumnarDataset
from repro.datasets.registry import meetup_like, scalability_dataset
from repro.datasets.synthetic import (
    gaussian_mixture_dataset,
    gaussian_mixture_points,
    uniform_dataset,
    uniform_points,
)
from repro.functions.base import SetFunction
from repro.functions.coverage import CoverageFunction
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.grid import GridIndex

SPACE = Rect(0.0, 100.0, 0.0, 50.0)


class TestGenerators:
    def test_uniform_points_is_a_columns_facade(self):
        ds = uniform_dataset(64, SPACE, seed=9)
        pts = uniform_points(64, SPACE, seed=9)
        assert [p.x for p in pts] == list(ds.xs)
        assert [p.y for p in pts] == list(ds.ys)

    def test_gaussian_points_is_a_columns_facade(self):
        ds = gaussian_mixture_dataset(128, SPACE, seed=4)
        pts = gaussian_mixture_points(128, SPACE, seed=4)
        assert [p.x for p in pts] == list(ds.xs)
        assert [p.y for p in pts] == list(ds.ys)

    def test_generators_stay_inside_the_open_space(self):
        ds = gaussian_mixture_dataset(256, SPACE, seed=11)
        assert float(ds.xs.min()) > SPACE.x_min
        assert float(ds.xs.max()) < SPACE.x_max
        assert float(ds.ys.min()) > SPACE.y_min
        assert float(ds.ys.max()) < SPACE.y_max


class TestRegistryFacade:
    def test_columns_cached_and_consistent(self):
        ds = scalability_dataset(300, seed=2)
        cols = ds.columns()
        assert cols is ds.columns()
        assert isinstance(cols, ColumnarDataset)
        assert [p.x for p in ds.points] == list(cols.xs)

    def test_diversity_columns(self):
        ds = meetup_like(n_objects=200, seed=3)
        cols = ds.columns()
        assert cols is ds.columns()
        assert cols.n == len(ds.points)


class TestServedFacade:
    def _store(self):
        from repro.serve.store import DatasetStore

        store = DatasetStore()
        pts = [Point(float(i), float(i % 5)) for i in range(20)]
        store.add_points("d", pts, SumFunction(20), fn_key="sum")
        return store

    def test_columns_cached_per_version(self):
        store = self._store()
        entry = store.resolve("d")
        cols = entry.columns()
        assert cols is entry.columns()
        # bump_version mutates the entry in place: cache must invalidate.
        store.bump_version("d")
        assert entry.columns() is not cols

    def test_regional_flip_gets_fresh_columns(self):
        store = self._store()
        old_cols = store.resolve("d").columns()
        pts = [Point(float(i), 1.0) for i in range(10)]
        store.apply_regional(
            "d", pts, SumFunction(10), external_ids=list(range(10))
        )
        new_cols = store.resolve("d").columns()
        assert new_cols is not old_cols
        assert new_cols.n == 10


class TestLiveFacade:
    def test_columns_track_mutation_seq(self):
        from repro.datasets.registry import meetup_like
        from repro.ingest.events import Insert, MutationBatch
        from repro.ingest.live import live_from_diversity

        live = live_from_diversity(meetup_like(n_objects=50, seed=1))
        cols = live.columns()
        assert cols is live.columns()
        assert cols.n == live.n_alive
        live.apply(MutationBatch(batch_id="b0", seq=0,
                                 events=(Insert(1.0, 2.0, None),)))
        fresh = live.columns()
        assert fresh is not cols
        assert fresh.n == live.n_alive
        # Compaction order: ascending stable ids, like snapshot().
        points, _, _ = live.snapshot()
        assert [p.x for p in points] == list(fresh.xs)


class TestBatchValue:
    def _groups(self):
        # Ids repeat across groups but are distinct within each group —
        # the documented CSR contract of batch_value.
        members = np.array([0, 2, 1, 2, 3, 0], dtype=np.int64)
        indptr = np.array([0, 2, 2, 5, 6], dtype=np.int64)
        return members, indptr

    def test_sum_function_batches_match_value(self):
        f = SumFunction(4, [1.0, 2.0, 4.0, 8.0])
        members, indptr = self._groups()
        got = f.batch_value(members, indptr)
        expected = [
            f.value(members[indptr[j]:indptr[j + 1]].tolist())
            for j in range(indptr.size - 1)
        ]
        assert got.tolist() == expected
        assert got[1] == 0.0  # empty group

    def test_coverage_function_batches_match_value(self):
        f = CoverageFunction(
            [{"a", "b"}, {"b"}, set(), {"c"}],
            label_weights={"a": 2.0},
            scale=0.5,
        )
        members, indptr = self._groups()
        got = f.batch_value(members, indptr)
        expected = [
            f.value(members[indptr[j]:indptr[j + 1]].tolist())
            for j in range(indptr.size - 1)
        ]
        assert got.tolist() == pytest.approx(expected)

    def test_default_batch_value_loops_over_value(self):
        class Cardinality(SetFunction):
            def value(self, objects):
                return float(len(set(objects)))

            def marginal(self, obj_id, base):
                return float(obj_id not in set(base))

        members, indptr = self._groups()
        got = Cardinality().batch_value(members, indptr)
        assert got.tolist() == [2.0, 0.0, 3.0, 1.0]


class TestGridCountFastPath:
    def test_large_index_counts_identically(self):
        import random

        rng = random.Random(8)
        pts = [
            Point(rng.uniform(0, 50), rng.uniform(0, 50)) for _ in range(400)
        ]
        grid = GridIndex(pts, cell_size=4.0)
        assert grid.n_objects >= GridIndex.COUNT_FAST_PATH_MIN
        for _ in range(100):
            x0, y0 = rng.uniform(-5, 45), rng.uniform(-5, 45)
            rect = Rect(x0, x0 + 10, y0, y0 + 10)
            assert grid.count_rect(rect) == len(grid.query_rect(rect))

    def test_mutation_invalidates_counter(self):
        pts = [Point(float(i % 20), float(i // 20)) for i in range(300)]
        grid = GridIndex(pts, cell_size=3.0)
        rect = Rect(-1.0, 25.0, -1.0, 25.0)
        before = grid.count_rect(rect)
        new_id = grid.insert(Point(5.5, 5.5))
        assert grid.count_rect(rect) == before + 1
        grid.delete(new_id)
        grid.delete(0)
        assert grid.count_rect(rect) == before - 1
