"""ColumnarDataset: construction contracts, views, and slab slicing."""

import numpy as np
import pytest

from repro.columnar.dataset import ColumnarDataset, as_columnar
from repro.core.siri import objects_in_region
from repro.geometry.point import Point
from repro.runtime.errors import InvalidQueryError


def _dataset():
    xs = np.array([3.0, 1.0, 2.0, 2.0, 0.5])
    ys = np.array([0.0, 2.5, 1.0, 1.0, 3.0])
    return ColumnarDataset(xs, ys)


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(InvalidQueryError):
            ColumnarDataset(np.empty(0), np.empty(0))

    def test_length_mismatch_rejected(self):
        with pytest.raises(InvalidQueryError):
            ColumnarDataset(np.zeros(3), np.zeros(2))

    def test_non_finite_rejected_with_position(self):
        with pytest.raises(InvalidQueryError, match=r"xs\[1\]"):
            ColumnarDataset(np.array([0.0, np.nan]), np.zeros(2))

    def test_negative_weights_rejected(self):
        with pytest.raises(InvalidQueryError, match="monotonicity"):
            ColumnarDataset(np.zeros(2), np.zeros(2), weights=[1.0, -0.5])

    def test_weight_count_mismatch_rejected(self):
        with pytest.raises(InvalidQueryError):
            ColumnarDataset(np.zeros(2), np.zeros(2), weights=[1.0])

    def test_columns_are_frozen(self):
        ds = _dataset()
        with pytest.raises(ValueError):
            ds.xs[0] = 9.0
        with pytest.raises(ValueError):
            ds.order_x[0] = 3

    def test_accepts_plain_lists(self):
        ds = ColumnarDataset([1, 2], [3, 4], weights=[1, 2])
        assert ds.xs.dtype == np.float64
        assert ds.weights is not None and ds.weights.dtype == np.float64


class TestViews:
    def test_sorted_views_are_sorted_and_consistent(self):
        ds = _dataset()
        assert np.all(np.diff(ds.xs_sorted) >= 0)
        assert np.all(np.diff(ds.ys_sorted) >= 0)
        assert np.array_equal(ds.xs[ds.order_x], ds.xs_sorted)
        assert np.array_equal(ds.ys[ds.order_y], ds.ys_sorted)

    def test_order_is_stable_on_ties(self):
        ds = _dataset()
        # xs has a tie at 2.0 on positions 2 and 3: stable sort keeps order.
        tied = [int(i) for i in ds.order_x if ds.xs[i] == 2.0]
        assert tied == [2, 3]

    def test_points_roundtrip(self):
        ds = _dataset()
        pts = ds.points()
        assert pts is ds.points()  # cached
        back = ColumnarDataset.from_points(pts)
        assert np.array_equal(back.xs, ds.xs)
        assert np.array_equal(back.ys, ds.ys)

    def test_tag_csr_roundtrip(self):
        tags = [{"a", "b"}, set(), {"b"}, {"c", "a"}, {"c"}]
        ds = ColumnarDataset(np.arange(5.0), np.arange(5.0), tag_sets=tags)
        assert ds.tag_sets() == [frozenset(t) for t in tags]

    def test_tagless_dataset_refuses_decode(self):
        with pytest.raises(InvalidQueryError, match="no tags"):
            _dataset().tag_sets()

    def test_subset_reindexes(self):
        ds = ColumnarDataset(
            np.arange(5.0), np.arange(5.0) * 2,
            weights=np.arange(5.0) + 1,
            tag_sets=[{i} for i in range(5)],
        )
        sub = ds.subset([4, 1])
        assert list(sub.xs) == [4.0, 1.0]
        assert list(sub.weights) == [5.0, 2.0]
        assert sub.tag_sets() == [frozenset({4}), frozenset({1})]


class TestSlabs:
    def test_slab_is_open_on_both_edges(self):
        ds = _dataset()
        # 1.0 and 2.0 are data coordinates: both must be excluded.
        ids = set(int(i) for i in ds.slab_x(1.0, 2.0))
        assert ids == set()
        ids = set(int(i) for i in ds.slab_x(0.5, 2.5))
        assert ids == {1, 2, 3}

    def test_slab_handles_duplicates(self):
        ds = _dataset()
        assert set(int(i) for i in ds.slab_x(1.5, 2.5)) == {2, 3}

    def test_ids_in_region_matches_object_path(self):
        ds = _dataset()
        pts = ds.points()
        for cx, cy, a, b in [
            (2.0, 1.0, 2.0, 2.0), (1.0, 2.5, 1.0, 3.0), (0.0, 0.0, 1.0, 1.0),
        ]:
            assert ds.ids_in_region(cx, cy, a, b) == objects_in_region(
                pts, Point(cx, cy), a, b
            )

    def test_count_in_rect_matches_brute_force(self):
        ds = _dataset()
        expected = sum(
            1 for p in ds.points() if 0.5 < p.x < 2.5 and 0.5 < p.y < 3.0
        )
        assert ds.count_in_rect(0.5, 2.5, 0.5, 3.0) == expected


class TestAsColumnar:
    def test_passthrough(self):
        ds = _dataset()
        assert as_columnar(ds) is ds

    def test_columns_facade(self):
        ds = _dataset()

        class Facade:
            def columns(self):
                return ds

        assert as_columnar(Facade()) is ds

    def test_point_sequence(self):
        pts = [Point(0.0, 1.0), Point(2.0, 3.0)]
        ds = as_columnar(pts)
        assert list(ds.xs) == [0.0, 2.0]
        assert list(ds.ys) == [1.0, 3.0]


class TestNumpyFloor:
    def test_old_numpy_fails_with_clear_message(self, monkeypatch):
        from repro import columnar

        monkeypatch.setattr(np, "__version__", "1.20.3")
        with pytest.raises(ImportError, match="requires numpy>=1.24"):
            columnar._check_numpy_floor()

    def test_unparsable_dev_version_tolerated(self, monkeypatch):
        from repro import columnar

        monkeypatch.setattr(np, "__version__", "weird.dev0")
        columnar._check_numpy_floor()  # must not raise

    def test_current_numpy_passes(self):
        from repro import columnar

        columnar._check_numpy_floor()
