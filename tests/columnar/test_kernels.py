"""Vectorized kernels vs brute-force references on seeded instances."""

import math
import random
from collections import Counter

import numpy as np
import pytest

from repro.columnar.kernels import (
    assign_slices,
    grid_cells,
    grouped_sweep,
    ids_active_at,
    maximal_intervals,
    siri_intervals,
    spanning_mask,
    validate_extent,
)
from repro.runtime.errors import InvalidQueryError


def _random_intervals(seed, n=30):
    """Intervals with deliberately colliding half-integer endpoints."""
    rng = random.Random(seed)
    lo = np.array([rng.randrange(0, 20) / 2.0 for _ in range(n)])
    hi = lo + np.array([rng.randrange(1, 8) / 2.0 for _ in range(n)])
    w = np.array([rng.randrange(1, 64) / 16.0 for _ in range(n)])
    return lo, hi, w


def test_validate_extent_rejects_bad_rectangles():
    for a, b in [(0.0, 1.0), (1.0, -2.0), (math.inf, 1.0), (1.0, math.nan)]:
        with pytest.raises(InvalidQueryError):
            validate_extent(a, b)
    validate_extent(0.5, 3.0)


def test_siri_intervals_arithmetic_matches_object_path():
    centers = np.array([0.0, 1.5, -2.25])
    lo, hi = siri_intervals(centers, 3.0)
    assert list(lo) == [c - 1.5 for c in centers]
    assert list(hi) == [c + 1.5 for c in centers]


@pytest.mark.parametrize("seed", range(8))
def test_grouped_sweep_active_weight_exact_in_every_gap(seed):
    lo, hi, w = _random_intervals(seed)
    batches = grouped_sweep(lo, hi, w)
    assert np.all(np.diff(batches.coords) > 0)
    for k in range(batches.coords.size - 1):
        mid = (batches.coords[k] + batches.coords[k + 1]) / 2.0
        expected = float(w[(lo < mid) & (hi > mid)].sum())
        assert batches.active_after[k] == pytest.approx(expected, abs=1e-9)


@pytest.mark.parametrize("seed", range(8))
def test_grouped_sweep_batch_flags(seed):
    lo, hi, w = _random_intervals(seed)
    batches = grouped_sweep(lo, hi, w)
    lo_set, hi_set = set(lo.tolist()), set(hi.tolist())
    for coord, ins, rem in zip(
        batches.coords, batches.has_insert, batches.has_remove
    ):
        assert bool(ins) == (float(coord) in lo_set)
        assert bool(rem) == (float(coord) in hi_set)


def test_grouped_sweep_empty_input():
    empty = np.empty(0)
    batches = grouped_sweep(empty, empty, empty)
    assert batches.coords.size == 0


@pytest.mark.parametrize("seed", range(8))
def test_maximal_intervals_trigger_rule(seed):
    lo, hi, w = _random_intervals(seed)
    slabs = maximal_intervals(lo, hi, w)
    batches = grouped_sweep(lo, hi, w)
    # Reference: the object sweep's trigger — insert batch followed by a
    # remove batch emits the open gap between them.
    expected = [
        (batches.coords[k], batches.coords[k + 1], batches.active_after[k])
        for k in range(batches.coords.size - 1)
        if batches.has_insert[k] and batches.has_remove[k + 1]
    ]
    got = list(zip(slabs.lo, slabs.hi, slabs.bound))
    assert got == expected
    # Lemma 6: at most n maximal intervals.
    assert slabs.lo.size <= lo.size


@pytest.mark.parametrize("seed", range(8))
def test_maximal_interval_bounds_are_exact_active_weights(seed):
    lo, hi, w = _random_intervals(seed)
    slabs = maximal_intervals(lo, hi, w)
    for slab_lo, slab_hi, bound in zip(slabs.lo, slabs.hi, slabs.bound):
        mid = (slab_lo + slab_hi) / 2.0
        active = ids_active_at(lo, hi, mid)
        assert bound == pytest.approx(float(w[active].sum()), abs=1e-9)


def test_spanning_mask_matches_interval_cover():
    y_min = np.array([0.0, 1.0, 2.0])
    y_max = np.array([3.0, 1.5, 4.0])
    mask = spanning_mask(y_min, y_max, 1.0, 1.5)
    assert list(mask) == [True, True, False]


@pytest.mark.parametrize("seed", range(8))
def test_assign_slices_matches_brute_force(seed):
    lo, hi, _ = _random_intervals(seed, n=25)
    width = [0.5, 1.0, 2.5][seed % 3]
    sl = assign_slices(lo, hi, width)
    x0 = float(lo.min())
    # Brute force: every (row, slice) overlap with nonzero clipped width.
    expected = []
    for row in range(lo.size):
        first = min(max(int((lo[row] - x0) // width), 0), sl.n_slices - 1)
        last = min(max(int((hi[row] - x0) // width), 0), sl.n_slices - 1)
        for s in range(first, last + 1):
            left = max(float(lo[row]), x0 + s * width)
            right = min(float(hi[row]), x0 + (s + 1) * width)
            if left < right:
                expected.append((s, row, left, right))
    expected.sort(key=lambda t: t[0])  # stable: row order kept per slice
    got = list(
        zip(sl.slice_ids.tolist(), sl.row_ids.tolist(),
            sl.clipped_lo.tolist(), sl.clipped_hi.tolist())
    )
    assert got == expected
    # slice_starts delimits each occupied slice's replica run.
    ends = np.append(sl.slice_starts[1:], sl.row_ids.size)
    for start, end in zip(sl.slice_starts, ends):
        assert len(set(sl.slice_ids[start:end].tolist())) == 1


@pytest.mark.parametrize("seed", range(8))
def test_grid_cells_matches_counter_order(seed):
    rng = random.Random(1000 + seed)
    n = 60
    xs = np.array([rng.uniform(0, 10) for _ in range(n)])
    ys = np.array([rng.uniform(0, 10) for _ in range(n)])
    cw, ch = 1.5, 2.0
    cell_xy, member_order, member_starts, cell_order = grid_cells(
        xs, ys, cw, ch
    )
    x0, y0 = float(xs.min()), float(ys.min())
    counts = Counter(
        (int((x - x0) // cw), int((y - y0) // ch)) for x, y in zip(xs, ys)
    )
    # Same occupied cells, populations, and most_common order.
    got_cells = [tuple(int(v) for v in cell_xy[i]) for i in cell_order]
    assert got_cells == [cell for cell, _ in counts.most_common()]
    assert member_starts[-1] == n
    for j, (start, end) in enumerate(zip(member_starts[:-1], member_starts[1:])):
        cell = tuple(int(v) for v in cell_xy[j])
        members = member_order[start:end]
        assert end - start == counts[cell]
        for m in members:
            assert (
                int((xs[m] - x0) // cw), int((ys[m] - y0) // ch)
            ) == cell
