"""Property-based invariants: slab boundaries and sweep exactness.

These are the array-form counterparts of the object path's BRS001
open-rectangle discipline: ``searchsorted``-based slab slicing must
exclude boundary coordinates exactly, including under heavy coordinate
duplication, and sweep bounds must equal the true active weight at any
interior coordinate.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.columnar.dataset import ColumnarDataset
from repro.columnar.kernels import grouped_sweep, ids_active_at, maximal_intervals
from repro.core.siri import objects_in_region
from repro.geometry.point import Point

# Half-integer coordinates on a small range: duplicates are the common
# case, which is exactly what boundary semantics must survive.
_coord = st.integers(0, 12).map(lambda v: v / 2.0)
_coords = st.lists(_coord, min_size=1, max_size=25)
_weight = st.integers(1, 64).map(lambda v: v / 16.0)


@given(_coords, _coords, _coord, _coord)
@settings(max_examples=150, deadline=None)
def test_slab_x_is_exactly_the_open_interval(xs, ys, lo, hi):
    n = min(len(xs), len(ys))
    ds = ColumnarDataset(np.array(xs[:n]), np.array(ys[:n]))
    got = sorted(int(i) for i in ds.slab_x(lo, hi))
    expected = [i for i in range(n) if lo < xs[i] < hi]
    assert got == expected


@given(_coords, _coords, _coord, _coord)
@settings(max_examples=150, deadline=None)
def test_slab_y_is_exactly_the_open_interval(xs, ys, lo, hi):
    n = min(len(xs), len(ys))
    ds = ColumnarDataset(np.array(xs[:n]), np.array(ys[:n]))
    got = sorted(int(i) for i in ds.slab_y(lo, hi))
    expected = [i for i in range(n) if lo < ys[i] < hi]
    assert got == expected


@given(_coords)
@settings(max_examples=100, deadline=None)
def test_boundary_coordinates_are_always_excluded(xs):
    """BRS001 in array form: a slab bounded by a data coordinate never
    contains that coordinate's objects, no matter how many duplicates."""
    ds = ColumnarDataset(np.array(xs), np.zeros(len(xs)))
    for bound in set(xs):
        inside = ds.slab_x(bound, bound + 1.0)
        assert not np.any(ds.xs[inside] == bound)
        inside = ds.slab_x(bound - 1.0, bound)
        assert not np.any(ds.xs[inside] == bound)


@given(
    _coords, _coords, _coord, _coord,
    st.sampled_from([0.5, 1.0, 2.0]), st.sampled_from([0.5, 1.0, 3.0]),
)
@settings(max_examples=150, deadline=None)
def test_ids_in_region_matches_object_path(xs, ys, cx, cy, a, b):
    n = min(len(xs), len(ys))
    ds = ColumnarDataset(np.array(xs[:n]), np.array(ys[:n]))
    pts = [Point(x, y) for x, y in zip(xs[:n], ys[:n])]
    assert ds.ids_in_region(cx, cy, a, b) == objects_in_region(
        pts, Point(cx, cy), a, b
    )


@given(st.lists(st.tuples(_coord, st.integers(1, 8), _weight),
                min_size=1, max_size=20))
@settings(max_examples=150, deadline=None)
def test_sweep_active_weight_matches_open_membership(intervals):
    lo = np.array([t[0] for t in intervals])
    hi = lo + np.array([t[1] / 2.0 for t in intervals])
    w = np.array([t[2] for t in intervals])
    batches = grouped_sweep(lo, hi, w)
    for k in range(batches.coords.size - 1):
        mid = (batches.coords[k] + batches.coords[k + 1]) / 2.0
        active = ids_active_at(lo, hi, mid)
        assert batches.active_after[k] == float(w[active].sum())


@given(st.lists(st.tuples(_coord, st.integers(1, 8), _weight),
                min_size=1, max_size=20))
@settings(max_examples=150, deadline=None)
def test_maximal_intervals_contain_no_event_coordinate(intervals):
    lo = np.array([t[0] for t in intervals])
    hi = lo + np.array([t[1] / 2.0 for t in intervals])
    w = np.array([t[2] for t in intervals])
    slabs = maximal_intervals(lo, hi, w)
    events = np.concatenate((lo, hi))
    for slab_lo, slab_hi in zip(slabs.lo, slabs.hi):
        assert slab_lo < slab_hi
        assert not np.any((events > slab_lo) & (events < slab_hi))
