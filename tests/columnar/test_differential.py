"""Columnar solvers vs object-path solvers vs the NaiveBRS oracle.

Every instance uses half-integer coordinates and dyadic (k/256) weights:
all partial sums are then exact in float64 regardless of summation
order, so score comparisons are byte-identical ``==``, not approx.
"""

import random

import numpy as np
import pytest

from repro.columnar.dataset import ColumnarDataset
from repro.columnar.gridscan import columnar_grid_scan
from repro.columnar.rangecount import SortedRangeCounter
from repro.columnar.solvers import (
    columnar_best_region,
    columnar_oe_maxrs,
    columnar_slicebrs,
)
from repro.core.gridscan import coarse_grid_scan
from repro.core.maxrs import oe_maxrs
from repro.core.naive import NaiveBRS
from repro.core.siri import objects_in_region
from repro.core.slicebrs import SliceBRS
from repro.functions.coverage import CoverageFunction
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.grid import GridIndex

SEEDS = range(40)


def _instance(seed):
    """A dyadic-exact weighted instance plus a rectangle size."""
    rng = random.Random(seed)
    n = rng.randint(12, 36)
    points = [
        Point(rng.randrange(0, 41) / 2.0, rng.randrange(0, 41) / 2.0)
        for _ in range(n)
    ]
    weights = [rng.randrange(1, 512) / 256.0 for _ in range(n)]
    a = rng.choice([1.0, 1.5, 2.5, 3.0])
    b = rng.choice([1.0, 2.0, 2.5, 4.0])
    return points, weights, a, b


def _assert_valid_location(result, points, f, a, b):
    """The reported center must actually achieve the reported score."""
    ids = objects_in_region(points, result.point, a, b)
    assert ids == result.object_ids
    assert f.value(ids) == result.score


@pytest.mark.parametrize("seed", SEEDS)
def test_columnar_slicebrs_matches_oracle(seed):
    points, weights, a, b = _instance(seed)
    f = SumFunction(len(points), weights)
    oracle = NaiveBRS().solve(points, f, a, b)
    obj = SliceBRS().solve(points, f, a, b)
    col = columnar_slicebrs(points, f, a, b)
    assert obj.score == oracle.score
    assert col.score == oracle.score
    assert col.status == "ok"
    _assert_valid_location(col, points, f, a, b)


@pytest.mark.parametrize("seed", SEEDS)
def test_columnar_oe_matches_object_oe_and_oracle(seed):
    points, weights, a, b = _instance(seed)
    f = SumFunction(len(points), weights)
    oracle = NaiveBRS().solve(points, f, a, b)
    obj = oe_maxrs(points, a, b, weights=weights)
    col = columnar_oe_maxrs(points, a, b, weights=weights)
    assert obj.score == oracle.score
    assert col.score == oracle.score
    _assert_valid_location(col, points, f, a, b)


@pytest.mark.parametrize("seed", [0, 7, 19, 23, 31])
def test_theta_variants_agree(seed):
    points, weights, a, b = _instance(seed)
    f = SumFunction(len(points), weights)
    base = columnar_slicebrs(points, f, a, b, theta=1.0)
    for theta in (2.0, 3.5):
        assert columnar_slicebrs(points, f, a, b, theta=theta).score == base.score


@pytest.mark.parametrize("seed", [1, 5, 12, 28, 33])
def test_dataset_weight_column_is_picked_up(seed):
    points, weights, a, b = _instance(seed)
    ds = ColumnarDataset.from_points(points, weights=weights)
    explicit = columnar_oe_maxrs(points, a, b, weights=weights)
    implicit = columnar_oe_maxrs(ds, a, b)
    assert implicit.score == explicit.score


@pytest.mark.parametrize("seed", SEEDS)
def test_columnar_grid_scan_matches_object_path(seed):
    points, weights, a, b = _instance(seed)
    f = SumFunction(len(points), weights)
    obj = coarse_grid_scan(points, f, a, b)
    col = columnar_grid_scan(points, f, a, b)
    assert col.score == obj.score
    assert (col.point.x, col.point.y) == (obj.point.x, obj.point.y)
    assert col.status == obj.status


@pytest.mark.parametrize("seed", [2, 9, 17, 26, 38])
def test_best_region_fallback_on_coverage(seed):
    points, _, a, b = _instance(seed)
    rng = random.Random(seed * 7 + 1)
    tags = [
        {rng.randrange(0, 8) for _ in range(rng.randint(0, 3))}
        for _ in points
    ]
    f = CoverageFunction(tags)
    obj = SliceBRS().solve(points, f, a, b)
    col = columnar_best_region(points, f, a, b)
    assert col.score == obj.score
    _assert_valid_location(col, points, f, a, b)


@pytest.mark.parametrize("seed", [3, 11, 24, 36])
def test_sorted_range_counter_matches_grid_index(seed):
    points, _, _, _ = _instance(seed)
    counter = SortedRangeCounter(points)
    grid = GridIndex(points, cell_size=2.0)
    rng = random.Random(seed + 500)
    for _ in range(200):
        x0 = rng.uniform(-2, 20)
        y0 = rng.uniform(-2, 20)
        rect = Rect(x0, x0 + rng.uniform(0.5, 8), y0, y0 + rng.uniform(0.5, 8))
        assert counter.count(
            rect.x_min, rect.x_max, rect.y_min, rect.y_max
        ) == grid.count_rect(rect)
        assert counter.ids(
            rect.x_min, rect.x_max, rect.y_min, rect.y_max
        ) == sorted(grid.query_rect(rect))


@pytest.mark.parametrize("seed", [4, 13, 29])
def test_budget_timeout_is_anytime_and_sound(seed):
    from repro.runtime.budget import Budget

    points, weights, a, b = _instance(seed)
    f = SumFunction(len(points), weights)
    exact = NaiveBRS().solve(points, f, a, b)
    result = columnar_slicebrs(points, f, a, b, budget=Budget(max_evals=1))
    assert result.status == "timeout"
    assert result.upper_bound is not None
    assert result.score <= result.upper_bound
    assert exact.score <= result.upper_bound


def test_initial_best_prunes_everything_but_stays_sound():
    points, weights, a, b = _instance(42)
    f = SumFunction(len(points), weights)
    exact = NaiveBRS().solve(points, f, a, b)
    # An unachievable incumbent: the solver may prune every slice, but the
    # answer it returns must still be a real (recomputed) score.
    result = columnar_slicebrs(points, f, a, b, initial_best=exact.score + 100)
    assert result.status == "ok"
    assert result.score == f.value(result.object_ids)
