"""Property-based invariants of c-cover selection."""

from hypothesis import given, settings, strategies as st

from repro.cover.greedy_cover import greedy_cover
from repro.cover.quadtree_cover import select_cover
from repro.geometry.point import Point

_coord = st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False)
_points = st.lists(st.tuples(_coord, _coord), min_size=1, max_size=40).map(
    lambda pairs: [Point(x, y) for x, y in pairs]
)
_c = st.sampled_from([1.0 / 3.0, 0.5, 0.75])
_side = st.sampled_from([1.0, 5.0, 20.0, 80.0])


@given(_points, _c, _side, _side)
@settings(max_examples=80, deadline=None)
def test_quadtree_cover_property(points, c, a, b):
    """Definition 7 holds for every generated instance."""
    cover = select_cover(points, c, a, b)
    assert cover.covers(points, a, b)


@given(_points, _c, _side, _side)
@settings(max_examples=80, deadline=None)
def test_quadtree_groups_partition(points, c, a, b):
    cover = select_cover(points, c, a, b)
    ids = sorted(i for group in cover.groups for i in group)
    assert ids == list(range(len(points)))


@given(_points, _c, _side, _side)
@settings(max_examples=40, deadline=None)
def test_greedy_cover_property(points, c, a, b):
    cover = greedy_cover(points, c, a, b)
    assert cover.covers(points, a, b)
    ids = sorted(i for group in cover.groups for i in group)
    assert ids == list(range(len(points)))


@given(_points, _c)
@settings(max_examples=40, deadline=None)
def test_cover_size_monotone_in_query(points, c):
    """Bigger query rectangles can only shrink (or keep) the cover."""
    small = select_cover(points, c, a=2.0, b=2.0).size
    large = select_cover(points, c, a=64.0, b=64.0).size
    assert large <= small
