"""Property tests for streaming ingest: never stale, regionally thrifty.

Two claims the durable ingest path stands on, checked on generated
mutation streams:

* **Never stale.**  After any batch becomes visible, a served query —
  cached or not — scores exactly what the brute-force oracle computes on
  the *current* alive objects.  Regional invalidation may keep entries a
  version bump would have dropped, but it may never keep a wrong one.
* **Regionally thrifty.**  A focused cache entry whose window misses
  every touched region survives the flip byte-identically — the whole
  point of regional over whole-dataset invalidation.
"""

from hypothesis import given, settings, strategies as st

from repro.core.naive import NaiveBRS
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.ingest.events import Delete, Insert
from repro.ingest.live import LiveDataset
from repro.ingest.pipeline import IngestPipeline
from repro.ingest.wal import IngestLog
from repro.serve.cache import ResultCache
from repro.serve.executor import ServeEngine
from repro.serve.model import QueryRequest
from repro.serve.store import DatasetStore

SPACE = Rect(0.0, 12.0, 0.0, 12.0)

# Half-integer lattice coordinates provoke boundary contact between
# query windows and mutated points — the regime where an open-interval
# overlap test would under-evict.
_coord = st.integers(min_value=2, max_value=20).map(lambda v: v / 2.0)
_payload = st.lists(st.integers(0, 5), min_size=0, max_size=3).map(sorted)

_base = st.lists(
    st.tuples(_coord, _coord, _payload), min_size=3, max_size=10, unique_by=lambda t: (t[0], t[1])
)


@st.composite
def streams(draw):
    """A base instance plus 1-3 mutation batches over it."""
    base = draw(_base)
    n_batches = draw(st.integers(1, 3))
    batches = []
    n_alive = len(base)
    next_id = len(base)
    for _ in range(n_batches):
        events = []
        for _ in range(draw(st.integers(1, 3))):
            if n_alive <= 2 or draw(st.booleans()):
                events.append(
                    Insert(draw(_coord), draw(_coord), payload=draw(_payload))
                )
                next_id += 1
                n_alive += 1
            else:
                # Delete a base-era object (always alive until drawn here).
                victim = draw(st.integers(0, len(base) - 1))
                if any(
                    isinstance(e, Delete) and e.obj_id == victim
                    for batch in batches + [events]
                    for e in batch
                ):
                    continue
                events.append(Delete(victim))
                n_alive -= 1
        if events:
            batches.append(events)
    return base, batches


def _setup(tmp_path_factory, base):
    # A sentinel object outside the mutation lattice ([1, 10]²): deletes
    # only ever target generated base ids, so the focus window around it
    # stays untouched through any stream.
    live = LiveDataset(
        [Point(x, y) for x, y, _ in base] + [Point(11.5, 11.5)],
        [p for _, _, p in base] + [[0]],
        space=SPACE,
    )
    store = DatasetStore()
    cache = ResultCache(64)
    points, _, fn = live.snapshot()
    store.add_points("d", points, fn, fn_key="coverage", space=SPACE)
    engine = ServeEngine(
        store, cache=cache, workers=1, shards=2, batch_window=0.0
    )
    wal = tmp_path_factory.mktemp("ingest") / "wal.jsonl"
    pipe = IngestPipeline(
        live,
        IngestLog(wal, sync=False),
        store=store,
        cache=cache,
        dataset_id="d",
    )
    return live, store, cache, engine, pipe


def _oracle_score(live, a, b):
    points, _, fn = live.snapshot()
    return NaiveBRS().solve(points, fn, a, b).score


@given(streams())
@settings(max_examples=25, deadline=None)
def test_served_answers_are_never_stale(tmp_path_factory, stream):
    base, batches = stream
    live, store, cache, engine, pipe = _setup(tmp_path_factory, base)
    try:
        request = QueryRequest(dataset="d", a=2.0, b=2.0)
        engine.query(request, timeout=60)  # warm the cache pre-mutation
        for events in batches:
            pipe.append(events)
            response = engine.query(request, timeout=60)
            assert response.status == "ok"
            assert response.score == _oracle_score(live, 2.0, 2.0)
    finally:
        pipe.close()
        engine.close()


@given(streams())
@settings(max_examples=25, deadline=None)
def test_untouched_focused_entries_survive_byte_identically(
    tmp_path_factory, stream
):
    base, batches = stream
    live, store, cache, engine, pipe = _setup(tmp_path_factory, base)
    try:
        # A focus window holding only the sentinel object, strictly
        # outside the mutation lattice: no batch can ever touch it.
        focus = (11.0, 12.0, 11.0, 12.0)
        request = QueryRequest(dataset="d", a=0.5, b=0.5, focus=focus)
        first = engine.query(request, timeout=60)
        for events in batches:
            pipe.append(events)
        again = engine.query(request, timeout=60)
        assert again.cached
        assert again.canonical_bytes() == first.canonical_bytes()
    finally:
        pipe.close()
        engine.close()


@given(streams())
@settings(max_examples=25, deadline=None)
def test_touched_entries_are_refreshed_not_reused(tmp_path_factory, stream):
    base, batches = stream
    live, store, cache, engine, pipe = _setup(tmp_path_factory, base)
    try:
        # A whole-space (unfocused) entry depends on every object, so any
        # visible batch must drop it; the refreshed answer matches the
        # oracle on the mutated data.
        request = QueryRequest(dataset="d", a=3.0, b=3.0)
        engine.query(request, timeout=60)
        for events in batches:
            pipe.append(events)
        response = engine.query(request, timeout=60)
        assert not response.cached
        assert response.score == _oracle_score(live, 3.0, 3.0)
    finally:
        pipe.close()
        engine.close()
