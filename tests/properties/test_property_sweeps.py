"""Property-based invariants of the sweep-line primitives themselves."""

from hypothesis import given, settings, strategies as st

from repro.core.siri import build_siri_rows
from repro.core.sweep import rows_spanning_slab, scan_slabs, search_slab
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point

_coord = st.integers(0, 30).map(lambda v: v / 2.0)
_points = st.lists(st.tuples(_coord, _coord), min_size=1, max_size=20).map(
    lambda pairs: [Point(x, y) for x, y in pairs]
)
_side = st.sampled_from([0.5, 1.0, 2.0, 3.5])


@given(_points, _side, _side)
@settings(max_examples=100, deadline=None)
def test_slabs_are_disjoint_and_ordered(points, a, b):
    rows = build_siri_rows(points, a, b)
    slabs = scan_slabs(rows, SumFunction(len(points)).evaluator())
    for (lo1, hi1, _), (lo2, hi2, _) in zip(slabs, slabs[1:]):
        assert lo1 < hi1
        assert hi1 <= lo2  # sweep order, non-overlapping interiors


@given(_points, _side, _side)
@settings(max_examples=100, deadline=None)
def test_slab_interiors_edge_free(points, a, b):
    rows = build_siri_rows(points, a, b)
    slabs = scan_slabs(rows, SumFunction(len(points)).evaluator())
    edges = sorted({r[2] for r in rows} | {r[3] for r in rows})
    for lo, hi, _ in slabs:
        assert not any(lo < e < hi for e in edges)


@given(_points, _side, _side)
@settings(max_examples=100, deadline=None)
def test_upper_bound_never_below_any_point_inside(points, a, b):
    """Lemma 7 as a property: every candidate inside a slab scores at most
    the slab's upper bound."""
    fn = SumFunction(len(points))
    rows = build_siri_rows(points, a, b)
    slabs = scan_slabs(rows, fn.evaluator())
    for slab in slabs:
        spanning = rows_spanning_slab(rows, slab)
        value, candidate = search_slab(spanning, slab, fn.evaluator(), 0.0)
        if candidate is not None:
            assert value <= slab[2] + 1e-9


@given(_points, _side, _side)
@settings(max_examples=100, deadline=None)
def test_at_most_n_slabs(points, a, b):
    """Lemma 6: at most n maximal slabs."""
    rows = build_siri_rows(points, a, b)
    slabs = scan_slabs(rows, SumFunction(len(points)).evaluator())
    assert len(slabs) <= len(points)


@given(_points, _side, _side)
@settings(max_examples=60, deadline=None)
def test_candidate_point_is_inside_its_slab_and_scores_truthfully(points, a, b):
    fn = SumFunction(len(points))
    rows = build_siri_rows(points, a, b)
    slabs = scan_slabs(rows, fn.evaluator())
    for slab in slabs:
        spanning = rows_spanning_slab(rows, slab)
        value, candidate = search_slab(spanning, slab, fn.evaluator(), 0.0)
        if candidate is None:
            continue
        assert slab[0] < candidate.y < slab[1]
        stabbed = [
            r[4] for r in rows
            if r[0] < candidate.x < r[1] and r[2] < candidate.y < r[3]
        ]
        assert fn.value(stabbed) >= value - 1e-9
