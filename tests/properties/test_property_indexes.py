"""Property-based invariants of the index substrates."""

from hypothesis import given, settings, strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.grid import GridIndex
from repro.index.interval import max_stabbing
from repro.index.quadtree import Quadtree
from repro.index.segment_tree import MaxAddSegmentTree

_coord = st.floats(-50.0, 50.0, allow_nan=False, allow_infinity=False)
_points = st.lists(st.tuples(_coord, _coord), min_size=1, max_size=50).map(
    lambda pairs: [Point(x, y) for x, y in pairs]
)


@given(_points, st.tuples(_coord, _coord, _coord, _coord))
@settings(max_examples=80, deadline=None)
def test_grid_matches_linear_scan(points, corners):
    x1, x2, y1, y2 = corners
    if not (x1 < x2 and y1 < y2):
        return
    rect = Rect(x1, x2, y1, y2)
    grid = GridIndex(points, cell_size=7.3)
    expected = sorted(i for i, p in enumerate(points) if rect.contains_point(p))
    assert sorted(grid.query_rect(rect)) == expected


@given(_points)
@settings(max_examples=60, deadline=None)
def test_quadtree_partitions_objects(points):
    tree = Quadtree(points)
    ids = sorted(tree.objects_under(tree.root))
    assert ids == list(range(len(points)))
    for depth in (1, 3, 6):
        frontier_ids = sorted(
            i for node in tree.truncated_nodes(depth) for i in tree.objects_under(node)
        )
        assert frontier_ids == list(range(len(points)))


@given(
    st.integers(1, 40),
    st.lists(
        st.tuples(st.integers(0, 39), st.integers(0, 39), st.integers(-5, 9)),
        max_size=60,
    ),
)
@settings(max_examples=80, deadline=None)
def test_segment_tree_matches_array(size, ops):
    tree = MaxAddSegmentTree(size)
    array = [0.0] * size
    for raw_lo, raw_hi, delta in ops:
        lo, hi = sorted((raw_lo % size, raw_hi % size))
        tree.add(lo, hi, float(delta))
        for i in range(lo, hi + 1):
            array[i] += float(delta)
        best, idx = tree.max_with_index()
        assert abs(best - max(array)) < 1e-9
        assert idx == array.index(max(array))


@given(
    st.lists(
        st.tuples(st.floats(0, 20, allow_nan=False), st.floats(0.1, 5, allow_nan=False)),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=80, deadline=None)
def test_max_stabbing_achievability(spans):
    intervals = [(lo, lo + length) for lo, length in spans]
    value, x = max_stabbing(intervals)
    assert x is not None
    stabbed = sum(1 for lo, hi in intervals if lo < x < hi)
    assert stabbed == value
    # And no interval endpoint midpoint beats it.
    coords = sorted({c for iv in intervals for c in iv})
    for lo, hi in zip(coords, coords[1:]):
        mid = (lo + hi) / 2
        assert sum(1 for l, h in intervals if l < mid < h) <= value
