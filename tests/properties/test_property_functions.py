"""Property-based invariants of the function framework."""

from hypothesis import given, settings, strategies as st

from repro.functions.coverage import CoverageFunction
from repro.functions.reduced import UnionReducedFunction, reduce_over_cover
from repro.functions.validate import check_submodular_monotone
from repro.functions.weighted_sum import SumFunction

_label_sets = st.lists(
    st.sets(st.integers(0, 9), min_size=0, max_size=4), min_size=1, max_size=12
)


@given(_label_sets)
@settings(max_examples=50, deadline=None)
def test_coverage_always_submodular_monotone(labels):
    fn = CoverageFunction(labels)
    check_submodular_monotone(fn, range(len(labels)), trials=60)


@given(_label_sets, st.data())
@settings(max_examples=50, deadline=None)
def test_coverage_evaluator_matches_batch(labels, data):
    fn = CoverageFunction(labels)
    ev = fn.evaluator()
    active = []
    n = len(labels)
    ops = data.draw(st.lists(st.integers(0, n - 1), max_size=40))
    for obj in ops:
        if obj in active and data.draw(st.booleans()):
            active.remove(obj)
            ev.pop(obj)
        else:
            active.append(obj)
            ev.push(obj)
        assert abs(ev.value - fn.value(active)) < 1e-9


@given(_label_sets, st.data())
@settings(max_examples=50, deadline=None)
def test_reduced_function_matches_manual_union(labels, data):
    fn = CoverageFunction(labels)
    n = len(labels)
    # A random partition of the objects into groups.
    assignment = data.draw(st.lists(st.integers(0, 3), min_size=n, max_size=n))
    groups = [[i for i in range(n) if assignment[i] == g] for g in range(4)]
    fast = reduce_over_cover(fn, groups)
    slow = UnionReducedFunction(fn, groups)
    subset = data.draw(st.sets(st.integers(0, 3), max_size=4))
    assert abs(fast.value(subset) - slow.value(subset)) < 1e-9


@given(st.lists(st.floats(0, 100, allow_nan=False), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_sum_function_is_modular(weights):
    fn = SumFunction(len(weights), weights)
    n = len(weights)
    full = fn.value(range(n))
    split = fn.value(range(n // 2)) + fn.value(range(n // 2, n))
    assert abs(full - split) < 1e-6
