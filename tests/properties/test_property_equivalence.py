"""Property-based cross-solver equivalence (the core correctness claims).

These are the strongest tests in the suite: on arbitrary generated
instances, SliceBRS must match the brute-force oracle exactly (Theorem 1 +
Lemmas 3/5/7), CoverBRS must respect its proven bound (Theorems 4/6), and
the MaxRS solvers must agree with the general algorithm under a modular f.
"""

from hypothesis import given, settings, strategies as st

from repro.core.coverbrs import CoverBRS
from repro.core.maxrs import oe_maxrs, slicebrs_maxrs
from repro.core.naive import NaiveBRS
from repro.core.slicebrs import SliceBRS
from repro.functions.coverage import CoverageFunction
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point

# Coordinates on a coarse lattice deliberately provoke ties: coincident
# x/y values, objects exactly a or b apart, rectangles sharing edges.
_coord = st.integers(min_value=0, max_value=24).map(lambda v: v / 2.0)
_points = st.lists(
    st.tuples(_coord, _coord), min_size=1, max_size=18
).map(lambda pairs: [Point(x, y) for x, y in pairs])
_rect_side = st.sampled_from([0.5, 1.0, 1.5, 2.0, 3.0])


@st.composite
def diversity_instances(draw):
    points = draw(_points)
    labels = [
        draw(st.sets(st.integers(0, 5), min_size=0, max_size=3))
        for _ in points
    ]
    return points, CoverageFunction(labels), draw(_rect_side), draw(_rect_side)


@st.composite
def sum_instances(draw):
    points = draw(_points)
    weights = [
        draw(st.integers(0, 8).map(lambda w: w / 2.0)) for _ in points
    ]
    return points, SumFunction(len(points), weights), draw(_rect_side), draw(_rect_side)


@given(diversity_instances())
@settings(max_examples=120, deadline=None)
def test_slicebrs_equals_bruteforce(instance):
    points, fn, a, b = instance
    exact = SliceBRS().solve(points, fn, a, b).score
    naive = NaiveBRS().solve(points, fn, a, b).score
    assert abs(exact - naive) < 1e-9


@given(diversity_instances(), st.sampled_from([0.5, 1.0, 2.5]))
@settings(max_examples=60, deadline=None)
def test_theta_invariance(instance, theta):
    points, fn, a, b = instance
    assert abs(
        SliceBRS(theta=theta).solve(points, fn, a, b).score
        - SliceBRS(theta=1.0).solve(points, fn, a, b).score
    ) < 1e-9


@given(diversity_instances())
@settings(max_examples=60, deadline=None)
def test_noslice_ablation_equivalent(instance):
    points, fn, a, b = instance
    assert abs(
        SliceBRS(slicing=False).solve(points, fn, a, b).score
        - SliceBRS().solve(points, fn, a, b).score
    ) < 1e-9


@given(diversity_instances(), st.sampled_from([1.0 / 3.0, 0.5]))
@settings(max_examples=80, deadline=None)
def test_coverbrs_bound_and_feasibility(instance, c):
    points, fn, a, b = instance
    optimal = NaiveBRS().solve(points, fn, a, b).score
    result = CoverBRS(c=c).solve(points, fn, a, b)
    ratio = 0.25 if c < 0.4 else 1.0 / 9.0
    assert result.score >= ratio * optimal - 1e-9
    assert result.score <= optimal + 1e-9
    # Reported score must equal f of the reported region contents.
    assert abs(result.score - fn.value(result.object_ids)) < 1e-9


@given(sum_instances())
@settings(max_examples=100, deadline=None)
def test_maxrs_solvers_agree(instance):
    points, fn, a, b = instance
    weights = list(fn.weights)
    oe = oe_maxrs(points, a, b, weights).score
    adapted = slicebrs_maxrs(points, a, b, weights).score
    general = SliceBRS().solve(points, fn, a, b).score
    naive = NaiveBRS().solve(points, fn, a, b).score
    assert abs(oe - naive) < 1e-9
    assert abs(adapted - naive) < 1e-9
    assert abs(general - naive) < 1e-9


@given(diversity_instances())
@settings(max_examples=60, deadline=None)
def test_result_point_reproduces_score(instance):
    """The returned center, re-evaluated from scratch, yields the score."""
    points, fn, a, b = instance
    result = SliceBRS().solve(points, fn, a, b)
    half_a, half_b = a / 2.0, b / 2.0
    inside = [
        i
        for i, p in enumerate(points)
        if abs(p.x - result.point.x) < half_b and abs(p.y - result.point.y) < half_a
    ]
    assert abs(fn.value(inside) - result.score) < 1e-9
