"""Anytime soundness against the brute-force oracle.

Three properties over random instances:

1. An anytime (budget-cut) score never exceeds the exact optimum.
2. The reported gap is an upper bound on the true gap — equivalently,
   ``score + gap >= optimum`` whenever a bound is reported.
3. An unlimited budget changes nothing: the answer is bit-identical to
   the budget-free exact answer.
"""

import pytest

from repro.core.brs import best_region
from repro.core.naive import NaiveBRS
from repro.core.slicebrs import SliceBRS
from repro.runtime.budget import Budget
from tests.helpers import random_instance

SEEDS = range(12)
TOLERANCE = 1e-9


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("max_evals", [1, 3, 10])
def test_anytime_score_never_exceeds_optimum(seed, max_evals):
    points, f, a, b = random_instance(seed)
    optimum = NaiveBRS().solve(points, f, a, b).score
    result = SliceBRS().solve(
        points, f, a, b, budget=Budget(max_evals=max_evals)
    )
    assert result.score <= optimum + TOLERANCE


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("max_evals", [1, 3, 10])
def test_reported_gap_bounds_true_gap(seed, max_evals):
    points, f, a, b = random_instance(seed)
    optimum = NaiveBRS().solve(points, f, a, b).score
    result = SliceBRS().solve(
        points, f, a, b, budget=Budget(max_evals=max_evals)
    )
    if result.status == "ok":
        assert result.score == pytest.approx(optimum)
    else:
        assert result.upper_bound is not None
        assert result.score + result.gap >= optimum - TOLERANCE
        assert result.upper_bound >= optimum - TOLERANCE


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("max_evals", [2, 8])
def test_ladder_answer_is_sound(seed, max_evals):
    points, f, a, b = random_instance(seed)
    optimum = NaiveBRS().solve(points, f, a, b).score
    result = best_region(points, f, a, b, budget=Budget(max_evals=max_evals))
    assert result.score <= optimum + TOLERANCE
    if result.status != "ok":
        assert result.upper_bound is not None
        assert result.score + result.gap >= optimum - TOLERANCE


@pytest.mark.parametrize("seed", SEEDS)
def test_unlimited_budget_is_bit_identical(seed):
    points, f, a, b = random_instance(seed)
    bare = SliceBRS().solve(points, f, a, b)
    budgeted = SliceBRS().solve(points, f, a, b, budget=Budget.unlimited())
    assert budgeted.status == "ok"
    assert budgeted.point == bare.point
    assert budgeted.score == bare.score
    assert budgeted.object_ids == bare.object_ids
    assert budgeted.upper_bound is None
