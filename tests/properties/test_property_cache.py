"""Property tests for the serving cache: byte-identity and staleness.

The two claims the result cache stands on, checked on arbitrary generated
instances:

* a cached :class:`~repro.serve.model.QueryResponse` is **byte-identical**
  to the answer a fresh solve of the same normalized query produces;
* after a dataset-version bump the cache can **never serve stale scores**
  — the next answer always matches the brute-force oracle on the *new*
  data, even though the old answer is still sitting in the cache's
  storage under the old version's key.
"""

from hypothesis import given, settings, strategies as st

from repro.core.naive import NaiveBRS
from repro.functions.coverage import CoverageFunction
from repro.geometry.point import Point
from repro.serve.cache import ResultCache
from repro.serve.executor import ServeEngine
from repro.serve.model import QueryRequest
from repro.serve.store import DatasetStore

# Lattice coordinates deliberately provoke ties (coincident coordinates,
# objects exactly a rectangle apart) — the regime where two "equal-score"
# solves could plausibly disagree on serialization.
_coord = st.integers(min_value=0, max_value=24).map(lambda v: v / 2.0)
_points = st.lists(
    st.tuples(_coord, _coord), min_size=1, max_size=14
).map(lambda pairs: [Point(x, y) for x, y in pairs])
_rect_side = st.sampled_from([0.5, 1.0, 1.5, 2.0, 3.0])


@st.composite
def instances(draw):
    points = draw(_points)
    labels = [
        draw(st.sets(st.integers(0, 5), min_size=0, max_size=3))
        for _ in points
    ]
    return points, labels, draw(_rect_side), draw(_rect_side)


def _engine(points, labels):
    store = DatasetStore()
    store.add_points("d", points, CoverageFunction(labels), fn_key="coverage")
    return ServeEngine(
        store, cache=ResultCache(64), workers=1, shards=3, batch_window=0.0
    )


@given(instances())
@settings(max_examples=40, deadline=None)
def test_cached_response_is_byte_identical_to_fresh_solve(instance):
    points, labels, a, b = instance
    engine = _engine(points, labels)
    try:
        req = QueryRequest(dataset="d", a=a, b=b)
        fresh = engine.query(req, timeout=60)
        cached = engine.query(req, timeout=60)
        assert fresh.status == "ok"
        assert cached.cached
        assert cached.canonical_bytes() == fresh.canonical_bytes()
        # And the cacheable cores compare equal as values too.
        assert cached == fresh
    finally:
        engine.close()


@given(instances(), instances())
@settings(max_examples=25, deadline=None)
def test_invalidation_never_serves_stale_scores(old_instance, new_instance):
    old_points, old_labels, a, b = old_instance
    new_points, new_labels, _, _ = new_instance
    engine = _engine(old_points, old_labels)
    try:
        req = QueryRequest(dataset="d", a=a, b=b)
        before = engine.query(req, timeout=60)
        oracle_old = NaiveBRS().solve(
            old_points, CoverageFunction(old_labels), a, b
        )
        assert abs(before.score - oracle_old.score) < 1e-9

        # Replace the data; replace_points bumps the version, and the
        # engine-level invalidate purges reachable entries as well.
        engine.store.replace_points(
            "d", new_points, CoverageFunction(new_labels)
        )
        engine.cache.purge_dataset("d")

        after = engine.query(req, timeout=60)
        oracle_new = NaiveBRS().solve(
            new_points, CoverageFunction(new_labels), a, b
        )
        assert not after.cached
        assert after.version == before.version + 1
        assert abs(after.score - oracle_new.score) < 1e-9
    finally:
        engine.close()


@given(instances())
@settings(max_examples=25, deadline=None)
def test_stale_entry_left_in_storage_is_unreachable(instance):
    points, labels, a, b = instance
    engine = _engine(points, labels)
    try:
        req = QueryRequest(dataset="d", a=a, b=b)
        engine.query(req, timeout=60)
        # Bump the version WITHOUT purging: the stale entry stays stored,
        # and key-embedded versions alone must keep it unservable.
        engine.store.bump_version("d")
        assert len(engine.cache) == 1
        after = engine.query(req, timeout=60)
        oracle = NaiveBRS().solve(points, CoverageFunction(labels), a, b)
        assert not after.cached
        assert abs(after.score - oracle.score) < 1e-9
    finally:
        engine.close()
