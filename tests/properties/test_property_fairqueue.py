"""Property tests for the fair queue and tenant admission.

Two guarantees the async serve tier's fairness story rests on:

* **No starvation (bounded bypass).**  Under an adversarial arrival
  order, the number of later-arriving items of other tenants that
  dequeue before a marked item never exceeds the closed-form
  :func:`~repro.serve.fairqueue.bypass_bound` — so a flooding tenant
  can delay a polite one by a weight-ratio constant, never unboundedly.
* **Quota monotonicity.**  With the global capacity unconstrained,
  raising one tenant's quota can only admit a superset of requests:
  every admit that succeeded under quota ``q`` also succeeds under
  ``q' >= q``, and the open-slot gap never exceeds ``q' - q``.
"""

from hypothesis import given, settings, strategies as st

from repro.serve.fairqueue import WeightedFairQueue, bypass_bound
from repro.serve.tenancy import TenantAdmission, TenantRegistry, TenantSpec

TENANTS = ("alpha", "beta", "gamma")

_weights = st.fixed_dictionaries(
    {t: st.sampled_from([0.5, 1.0, 2.0, 4.0]) for t in TENANTS}
)
# An adversarial schedule: pushes before the marked item, then pushes
# racing it afterwards, with some interleaved pops thrown in.
_pre_ops = st.lists(
    st.tuples(st.sampled_from(TENANTS), st.booleans()), max_size=30
)
_post_pushes = st.lists(st.sampled_from(TENANTS), max_size=40)


@settings(max_examples=60, deadline=None)
@given(weights=_weights, pre=_pre_ops, post=_post_pushes)
def test_no_tenant_starves_beyond_the_bypass_bound(weights, pre, post):
    queue = WeightedFairQueue(weights)
    serial = iter(range(10**6))

    for tenant, also_pop in pre:
        queue.push(tenant, ("pre", next(serial)))
        if also_pop:
            queue.pop()

    own = "alpha"
    queued_ahead = queue.depth(own)
    marked = ("marked", next(serial))
    queue.push(own, marked)

    late = set()
    for tenant in post:
        item = ("post", next(serial))
        queue.push(tenant, item)
        if tenant != own:
            late.add(item)

    bypassed = 0
    while True:
        popped = queue.pop()
        assert popped is not None, "marked item was lost"
        _, item = popped
        if item == marked:
            break
        if item in late:
            bypassed += 1

    others = [w for t, w in weights.items() if t != own]
    assert bypassed <= bypass_bound(queued_ahead, weights[own], others)


@settings(max_examples=60, deadline=None)
@given(weights=_weights, pushes=st.lists(st.sampled_from(TENANTS),
                                         min_size=10, max_size=60))
def test_fifo_within_one_tenant(weights, pushes):
    queue = WeightedFairQueue(weights)
    for i, tenant in enumerate(pushes):
        queue.push(tenant, i)
    seen = {}
    while True:
        popped = queue.pop()
        if popped is None:
            break
        tenant, i = popped
        if tenant in seen:
            assert i > seen[tenant], "same-tenant order inverted"
        seen[tenant] = i


def test_backlogged_throughput_tracks_weights():
    queue = WeightedFairQueue({"heavy": 3.0, "light": 1.0})
    for i in range(120):
        queue.push("heavy", ("heavy", i))
        queue.push("light", ("light", i))
    first_80 = [queue.pop()[0] for _ in range(80)]
    heavy = first_80.count("heavy")
    # 3:1 weights: expect ~60/20 with small boundary slack.
    assert 55 <= heavy <= 65


_quota_ops = st.lists(
    st.one_of(
        st.tuples(st.just("admit"), st.sampled_from(TENANTS)),
        st.tuples(st.just("release"), st.integers(min_value=0, max_value=79)),
    ),
    max_size=80,
)


def _replay(ops, quota_alpha):
    """Run an op sequence; returns (admitted flags, final open counts)."""
    registry = TenantRegistry()
    registry.register(TenantSpec(id="alpha", quota=quota_alpha))
    registry.register(TenantSpec(id="beta", quota=4))
    registry.register(TenantSpec(id="gamma", quota=4))
    admission = TenantAdmission(registry, capacity=None)
    admitted = []
    admit_tenants = []
    released = set()
    for op, arg in ops:
        if op == "admit":
            try:
                admission.admit(arg)
                admitted.append(True)
            except Exception:
                admitted.append(False)
            admit_tenants.append(arg)
        else:
            k = arg
            if k < len(admitted) and admitted[k] and k not in released:
                admission.release(admit_tenants[k])
                released.add(k)
    opens = {t: admission.open_count(t) for t in TENANTS}
    return admitted, opens


@settings(max_examples=60, deadline=None)
@given(ops=_quota_ops, quota=st.integers(min_value=1, max_value=6),
       bump=st.integers(min_value=0, max_value=4))
def test_quota_monotonicity(ops, quota, bump):
    small_admitted, small_open = _replay(ops, quota)
    large_admitted, large_open = _replay(ops, quota + bump)
    for i, (small, large) in enumerate(zip(small_admitted, large_admitted)):
        assert not small or large, (
            f"admit #{i} succeeded under quota {quota} but failed "
            f"under {quota + bump}"
        )
    assert large_open["alpha"] - small_open["alpha"] <= bump
