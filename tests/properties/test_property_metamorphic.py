"""Metamorphic properties of the partitioned solver.

Each property derives a transformed instance whose optimum is *known
from* the original's — no oracle needed, so they hold at any scale:

* translating every point shifts an optimal center by the same vector
  (and preserves the optimal score);
* uniformly scaling points and rectangle preserves the optimal score,
  and the scaled original center stays optimal;
* duplicating an object never decreases the optimal score (monotone f).

Optima need not be unique, so the assertions are phrased as "the
transformed original center still achieves the optimal score", never as
center equality.
"""

from __future__ import annotations

import pytest

from repro.core.siri import objects_in_region
from repro.functions.coverage import CoverageFunction
from repro.geometry.point import Point
from repro.parallel import solve_partitioned
from tests.helpers import random_instance, random_sum_instance

SEEDS = range(6)


def _instance(seed):
    if seed % 2 == 0:
        return random_instance(seed, max_objects=30)
    return random_sum_instance(seed, max_objects=30)


@pytest.mark.parametrize("seed", SEEDS)
def test_translation_shifts_optimum(seed):
    points, fn, a, b = _instance(seed)
    dx, dy = 13.25, -7.5
    moved = [Point(p.x + dx, p.y + dy) for p in points]

    base = solve_partitioned(points, fn, a, b, n_parts=3)
    shifted = solve_partitioned(moved, fn, a, b, n_parts=3)

    assert shifted.score == pytest.approx(base.score)
    # The translated original center is still an optimal placement.
    center = Point(base.point.x + dx, base.point.y + dy)
    achieved = fn.value(objects_in_region(moved, center, a, b))
    assert achieved == pytest.approx(base.score)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("factor", [0.25, 3.0])
def test_uniform_scaling_preserves_optimum(seed, factor):
    points, fn, a, b = _instance(seed)
    scaled = [Point(p.x * factor, p.y * factor) for p in points]

    base = solve_partitioned(points, fn, a, b, n_parts=3)
    rescaled = solve_partitioned(
        scaled, fn, a * factor, b * factor, n_parts=3
    )

    assert rescaled.score == pytest.approx(base.score)
    center = Point(base.point.x * factor, base.point.y * factor)
    achieved = fn.value(
        objects_in_region(scaled, center, a * factor, b * factor)
    )
    assert achieved == pytest.approx(base.score)


@pytest.mark.parametrize("seed", SEEDS)
def test_duplicating_an_object_never_decreases_score(seed):
    points, fn, a, b = random_instance(seed, max_objects=30)
    base = solve_partitioned(points, fn, a, b, n_parts=3)

    # Duplicate the first object in place: same location, same labels.
    dup_points = list(points) + [points[0]]
    dup_fn = CoverageFunction(
        [fn.labels_of(i) for i in range(len(points))] + [fn.labels_of(0)],
        fn.label_weights,
        scale=fn.scale,
    )
    dup = solve_partitioned(dup_points, dup_fn, a, b, n_parts=3)
    assert dup.score >= base.score - 1e-9
