"""Tests for the greedy c-cover baseline."""

import random

import pytest

from repro.cover.greedy_cover import greedy_cover
from repro.cover.quadtree_cover import select_cover
from repro.geometry.point import Point


def _random_points(n, seed=0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(n)]


class TestGreedyCover:
    def test_invalid_c(self):
        with pytest.raises(ValueError):
            greedy_cover([Point(0, 0)], c=1.5, a=1, b=1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            greedy_cover([], c=0.5, a=1, b=1)

    @pytest.mark.parametrize("c", [1 / 3, 1 / 2])
    def test_cover_property(self, c):
        pts = _random_points(120, seed=1)
        cover = greedy_cover(pts, c, a=12.0, b=12.0)
        assert cover.covers(pts, a=12.0, b=12.0)

    def test_groups_partition_objects(self):
        pts = _random_points(100, seed=2)
        cover = greedy_cover(pts, 1 / 3, a=15.0, b=15.0)
        all_ids = sorted(i for group in cover.groups for i in group)
        assert all_ids == list(range(100))

    def test_single_cluster_one_representative(self):
        pts = [Point(10 + 0.01 * i, 10 + 0.01 * i) for i in range(10)]
        cover = greedy_cover(pts, 1 / 2, a=10.0, b=10.0)
        assert cover.size == 1

    def test_spread_points_each_represented(self):
        pts = [Point(float(50 * i), 0.5) for i in range(4)]
        cover = greedy_cover(pts, 1 / 2, a=1.0, b=1.0)
        assert cover.size == 4

    def test_competitive_with_quadtree_heuristic(self):
        """Greedy is the quality yardstick: it should rarely be larger."""
        pts = _random_points(300, seed=3)
        a = b = 20.0
        greedy_size = greedy_cover(pts, 1 / 3, a, b).size
        quad_size = select_cover(pts, 1 / 3, a, b).size
        assert greedy_size <= quad_size * 2  # sanity envelope, not tight
