"""Tests for the CoverSelection container."""

import pytest

from repro.cover.selection import CoverSelection
from repro.geometry.point import Point
from repro.runtime.errors import InternalInvariantError


class TestCoverSelection:
    def test_length_mismatch_rejected(self):
        # A mismatched selection is a cover-construction bug, not bad input.
        with pytest.raises(InternalInvariantError):
            CoverSelection(points=[Point(0, 0)], groups=[[0], [1]], c=0.5)

    def test_size(self):
        sel = CoverSelection(points=[Point(0, 0), Point(1, 1)], groups=[[0], [1]], c=0.5)
        assert sel.size == 2

    def test_covers_accepts_valid_assignment(self):
        objects = [Point(0.1, 0.1), Point(5.0, 5.0)]
        sel = CoverSelection(points=[Point(0, 0), Point(5, 5)], groups=[[0], [1]], c=0.5)
        assert sel.covers(objects, a=2.0, b=2.0)

    def test_covers_rejects_far_representative(self):
        objects = [Point(0.0, 0.0)]
        sel = CoverSelection(points=[Point(10, 10)], groups=[[0]], c=0.5)
        assert not sel.covers(objects, a=2.0, b=2.0)

    def test_covers_rejects_boundary_object(self):
        """Strict containment: an object exactly on the ca x cb boundary
        does not count as covered."""
        objects = [Point(0.5, 0.0)]  # exactly cb/2 away with c=0.5, b=2
        sel = CoverSelection(points=[Point(0, 0)], groups=[[0]], c=0.5)
        assert not sel.covers(objects, a=2.0, b=2.0)

    def test_covers_rejects_missing_object(self):
        objects = [Point(0, 0), Point(0.1, 0.1)]
        sel = CoverSelection(points=[Point(0, 0)], groups=[[0]], c=0.5)
        assert not sel.covers(objects, a=2.0, b=2.0)
