"""Tests for quadtree-based c-cover selection."""

import random

import pytest

from repro.cover.quadtree_cover import cover_level, select_cover
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.quadtree import Quadtree


def _random_points(n, seed=0, extent=100.0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, extent), rng.uniform(0, extent)) for _ in range(n)]


class TestCoverLevel:
    def test_invalid_c(self):
        space = Rect(0, 10, 0, 10)
        for c in (0.0, 1.0, -1.0):
            with pytest.raises(ValueError):
                cover_level(space, c, a=1, b=1)

    def test_invalid_rect(self):
        with pytest.raises(ValueError):
            cover_level(Rect(0, 10, 0, 10), 0.5, a=0, b=1)

    def test_strict_fit(self):
        """The chosen depth's regions fit *strictly* inside ca x cb."""
        space = Rect(0, 16, 0, 16)
        c, a, b = 0.5, 4.0, 4.0
        level = cover_level(space, c, a, b)
        assert space.width / 2**level < c * b
        assert space.height / 2**level < c * a
        # And it is minimal: one level up does not fit strictly.
        assert (
            space.width / 2 ** (level - 1) >= c * b
            or space.height / 2 ** (level - 1) >= c * a
        )

    def test_huge_query_level_zero_when_space_tiny(self):
        """The whole space already fits strictly: truncate at the root."""
        assert cover_level(Rect(0, 1, 0, 1), 0.5, a=100, b=100) == 0

    def test_anisotropic_query(self):
        space = Rect(0, 64, 0, 64)
        level = cover_level(space, 0.5, a=64.0, b=2.0)
        # b-constraint dominates: need width/2^l < 1.
        assert 64 / 2**level < 1.0


class TestSelectCover:
    @pytest.mark.parametrize("c", [1 / 3, 1 / 2, 0.7])
    def test_cover_property(self, c):
        """Definition 7: every object strictly inside the ca x cb rectangle
        centered at its representative."""
        pts = _random_points(200, seed=1)
        cover = select_cover(pts, c, a=9.0, b=7.0)
        assert cover.covers(pts, a=9.0, b=7.0)

    def test_groups_partition_objects(self):
        pts = _random_points(150, seed=2)
        cover = select_cover(pts, 1 / 3, a=10.0, b=10.0)
        all_ids = sorted(i for group in cover.groups for i in group)
        assert all_ids == list(range(150))

    def test_cover_not_larger_than_objects_plus_internal(self):
        pts = _random_points(100, seed=3)
        cover = select_cover(pts, 1 / 3, a=20.0, b=20.0)
        assert cover.size <= 100

    def test_larger_query_gives_smaller_cover(self):
        pts = _random_points(300, seed=4)
        small_q = select_cover(pts, 1 / 3, a=2.0, b=2.0).size
        large_q = select_cover(pts, 1 / 3, a=40.0, b=40.0).size
        assert large_q <= small_q

    def test_reuses_prebuilt_quadtree(self):
        pts = _random_points(80, seed=5)
        tree = Quadtree(pts)
        c1 = select_cover(pts, 1 / 3, a=10, b=10, quadtree=tree)
        c2 = select_cover(pts, 1 / 3, a=10, b=10)
        assert c1.size == c2.size

    def test_coincident_points_each_self_represent(self):
        pts = [Point(1.0, 1.0)] * 4 + [Point(50.0, 50.0)]
        cover = select_cover(pts, 1 / 3, a=5.0, b=5.0)
        assert cover.covers(pts, a=5.0, b=5.0)

    def test_tiny_query_cover_is_all_objects(self):
        """When ca x cb is smaller than any inter-object gap, every object
        self-represents (leaves sit above the truncation depth)."""
        pts = [Point(float(i * 10), float(i * 10)) for i in range(5)]
        cover = select_cover(pts, 1 / 3, a=0.5, b=0.5)
        assert cover.size == 5
