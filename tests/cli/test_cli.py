"""Tests for the repro-brs command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def dataset_file(tmp_path):
    """A small diversity dataset on disk."""
    from repro.datasets.registry import yelp_like
    from repro.io.json_io import save_dataset

    path = tmp_path / "ds.json"
    save_dataset(yelp_like(n_objects=150, seed=6), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_requires_known_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "nope", "--out", "x.json"])

    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve", "f.json"])
        assert args.method == "slice"
        assert args.k == 10.0
        assert args.topk == 1


class TestCommands:
    def test_generate_then_info(self, tmp_path, capsys):
        out = tmp_path / "bk.json"
        assert main(["generate", "yelp_like", "--out", str(out)]) == 0
        assert out.exists()
        assert main(["info", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "diversity" in printed
        assert "yelp_like" in printed

    def test_solve_exact(self, dataset_file, capsys):
        assert main(["solve", dataset_file, "--k", "5"]) == 0
        printed = capsys.readouterr().out
        assert "center:" in printed
        assert "score:" in printed
        assert "stats:" in printed

    def test_solve_cover_prints_cover_stats(self, dataset_file, capsys):
        assert main(["solve", dataset_file, "--method", "cover", "--c", "0.5"]) == 0
        printed = capsys.readouterr().out
        assert "cover:" in printed
        assert "|T|=" in printed

    def test_solve_topk(self, dataset_file, capsys):
        assert main(["solve", dataset_file, "--topk", "3", "--k", "5"]) == 0
        printed = capsys.readouterr().out
        assert "#1:" in printed
        assert "#3:" in printed or "#2:" in printed  # may run out of objects

    def test_solve_aspect(self, dataset_file, capsys):
        assert main(["solve", dataset_file, "--aspect", "2.0"]) == 0
        printed = capsys.readouterr().out
        # a = 2b: the printed sizes must differ by ~2x.
        header = printed.splitlines()[0]
        assert "x" in header

    def test_bench_unknown_experiment(self, capsys):
        assert main(["bench", "--only", "nope"]) == 2

    def test_solve_agrees_with_library(self, dataset_file):
        from repro.core.slicebrs import SliceBRS
        from repro.io.json_io import load_dataset

        ds = load_dataset(dataset_file)
        a, b = ds.query(5)
        expected = SliceBRS().solve(ds.points, ds.score_function(), a, b).score
        # The CLI prints the same score (smoke via return path only here;
        # stdout parsing is covered above).
        assert expected > 0


class TestBudgetFlags:
    def test_generous_timeout_prints_ok_status(self, dataset_file, capsys):
        assert main(["solve", dataset_file, "--k", "5", "--timeout", "300"]) == 0
        printed = capsys.readouterr().out
        assert "status:  ok" in printed

    def test_tiny_eval_cap_prints_status_and_gap(self, dataset_file, capsys):
        assert main(["solve", dataset_file, "--max-evals", "1"]) == 0
        printed = capsys.readouterr().out
        assert "status:" in printed
        assert "degraded" in printed or "timeout" in printed
        assert "gap:" in printed

    def test_no_budget_prints_no_status_line(self, dataset_file, capsys):
        assert main(["solve", dataset_file, "--k", "5"]) == 0
        assert "status:" not in capsys.readouterr().out


class TestObservabilityFlags:
    def test_trace_writes_parseable_jsonl(self, dataset_file, tmp_path, capsys):
        import json

        trace_path = tmp_path / "run.jsonl"
        assert main(
            ["solve", dataset_file, "--k", "5", "--trace", str(trace_path)]
        ) == 0
        events = [
            json.loads(line)
            for line in trace_path.read_text().splitlines() if line
        ]
        kinds = [e["ev"] for e in events]
        assert kinds[0] == "meta"
        assert "enter" in kinds and "exit" in kinds
        spans = {e["span"] for e in events if e["ev"] == "enter"}
        assert "slicebrs.solve" in spans
        assert str(trace_path) in capsys.readouterr().out

    def test_metrics_out_prom_exposition(self, dataset_file, tmp_path, capsys):
        metrics_path = tmp_path / "metrics.prom"
        assert main(
            ["solve", dataset_file, "--k", "5", "--metrics-out", str(metrics_path)]
        ) == 0
        text = metrics_path.read_text()
        assert "# TYPE brs_slicebrs_solves_total counter" in text
        assert "brs_slicebrs_solves_total 1" in text
        assert "brs_candidates_total" in text
        assert str(metrics_path) in capsys.readouterr().out

    def test_metrics_out_json_snapshot(self, dataset_file, tmp_path):
        import json

        metrics_path = tmp_path / "metrics.json"
        assert main(
            ["solve", dataset_file, "--k", "5", "--metrics-out", str(metrics_path)]
        ) == 0
        data = json.loads(metrics_path.read_text())
        assert data["brs_slicebrs_solves_total"]["value"] == 1
        assert data["brs_candidates_total"]["value"] >= 1

    def test_profile_prints_hot_functions_to_stderr(self, dataset_file, capsys):
        assert main(["solve", dataset_file, "--k", "5", "--profile"]) == 0
        captured = capsys.readouterr()
        assert "function calls" in captured.err
        assert "function calls" not in captured.out

    def test_solver_and_total_time_reported_separately(self, dataset_file, capsys):
        import re

        assert main(["solve", dataset_file, "--k", "5"]) == 0
        printed = capsys.readouterr().out
        match = re.search(
            r"\[solve (\d+\.\d+)s, total (\d+\.\d+)s\]", printed
        )
        assert match, f"timing line missing from: {printed!r}"
        assert float(match.group(1)) <= float(match.group(2))


class TestErrorExitCodes:
    def test_missing_file_is_bad_input(self, capsys):
        from repro.cli import EXIT_BAD_INPUT

        assert main(["solve", "/no/such/file.json"]) == EXIT_BAD_INPUT
        assert "error:" in capsys.readouterr().err

    def test_invalid_query_is_bad_input(self, dataset_file, capsys):
        from repro.cli import EXIT_BAD_INPUT

        assert main(["solve", dataset_file, "--k", "-5"]) == EXIT_BAD_INPUT
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert err.count("\n") == 1  # one-line diagnosis, no traceback

    def test_bad_budget_is_bad_input(self, dataset_file, capsys):
        from repro.cli import EXIT_BAD_INPUT

        assert main(["solve", dataset_file, "--timeout", "-1"]) == EXIT_BAD_INPUT

    def test_evaluation_error_is_internal(self, dataset_file, capsys, monkeypatch):
        from repro import cli
        from repro.runtime.errors import EvaluationError

        def explode(args):
            raise EvaluationError("score backend down", object_ids=[1, 2])

        # build_parser resolves _cmd_solve from module globals at call time,
        # so patching the name reroutes the next main() invocation.
        monkeypatch.setattr(cli, "_cmd_solve", explode)
        assert cli.main(["solve", dataset_file]) == cli.EXIT_INTERNAL
        err = capsys.readouterr().err
        assert "score backend down" in err
        assert "object set: [1, 2]" in err

    def test_timeout_error_maps_to_timeout_code(self, dataset_file, capsys,
                                                monkeypatch):
        from repro import cli
        from repro.runtime.errors import BudgetExceededError

        def explode(args):
            raise BudgetExceededError("deadline of 1s exceeded")

        monkeypatch.setattr(cli, "_cmd_solve", explode)
        assert cli.main(["solve", dataset_file]) == cli.EXIT_TIMEOUT
        assert "budget exceeded" in capsys.readouterr().err


class TestBenchCommand:
    def test_bench_runs_stubbed_experiments(self, capsys, monkeypatch):
        from repro.bench.harness import Table
        import repro.bench.experiments as experiments

        def fake():
            return [Table("Table X", "stub", ("col",), [(1,)])]

        monkeypatch.setattr(experiments, "ALL_EXPERIMENTS", {"stub": fake})
        assert main(["bench", "--only", "stub"]) == 0
        assert "Table X" in capsys.readouterr().out


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve", "f.json"])
        assert args.port == 8331
        assert args.queue_capacity == 64
        assert args.cache_entries == 2048
        assert args.default_timeout is None

    def test_serve_end_to_end(self, dataset_file):
        """`repro-brs serve` boots, answers a query over HTTP, shuts down."""
        import json
        import os
        import pathlib
        import signal
        import subprocess
        import sys
        import time
        import urllib.request

        src = str(pathlib.Path(__file__).resolve().parents[2] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", dataset_file,
             "--port", "0", "--workers", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
        )
        try:
            url = None
            deadline = time.time() + 30
            while time.time() < deadline:
                line = proc.stdout.readline()
                if "listening on " in line:
                    url = line.split("listening on ")[1].split()[0]
                    break
            assert url, "server never reported its address"
            req = urllib.request.Request(
                url + "/v1/query",
                data=json.dumps({"dataset": "ds", "k": 2.0}).encode(),
                headers={"Content-Type": "application/json"},
                method="POST",
            )
            with urllib.request.urlopen(req, timeout=30) as resp:
                doc = json.loads(resp.read())
            assert doc["status"] == "ok"
            assert doc["dataset"] == "ds"
        finally:
            proc.send_signal(signal.SIGINT)
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
