"""Tests for the exact SliceBRS solver."""

import pytest

from tests.helpers import random_instance
from repro.core.naive import NaiveBRS
from repro.core.slicebrs import SliceBRS
from repro.core.siri import objects_in_region
from repro.functions.coverage import CoverageFunction
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point


class TestBasicCases:
    def test_single_object(self):
        result = SliceBRS().solve([Point(3, 3)], SumFunction(1), a=2, b=2)
        assert result.score == 1.0
        assert result.object_ids == [0]

    def test_figure1_scenario(self):
        """The paper's Figure 1: four same-tag objects lose to three
        diverse ones under the diversity function."""
        restaurants = [Point(0.0, 0.0), Point(0.2, 0.1), Point(0.1, 0.3), Point(0.3, 0.2)]
        diverse = [Point(5.0, 5.0), Point(5.2, 5.1), Point(5.1, 5.3)]
        points = restaurants + diverse
        labels = [{"restaurant"}] * 4 + [{"restaurant"}, {"mall"}, {"cinema"}]
        fn = CoverageFunction(labels)
        result = SliceBRS().solve(points, fn, a=1.0, b=1.0)
        assert result.score == 3.0
        assert sorted(result.object_ids) == [4, 5, 6]

    def test_all_coincident_objects(self):
        pts = [Point(1.0, 1.0)] * 5
        result = SliceBRS().solve(pts, SumFunction(5), a=1, b=1)
        assert result.score == 5.0

    def test_zero_scoring_function_falls_back(self):
        """All-zero f: any region is optimal; solver must still return."""
        pts = [Point(0, 0), Point(4, 4)]
        fn = CoverageFunction([set(), set()])
        result = SliceBRS().solve(pts, fn, a=1, b=1)
        assert result.score == 0.0
        assert result.point is not None

    def test_empty_instance_rejected(self):
        with pytest.raises(ValueError):
            SliceBRS().solve([], SumFunction(0), a=1, b=1)

    def test_bad_theta_rejected(self):
        with pytest.raises(ValueError):
            SliceBRS(theta=0.0)

    def test_returned_score_matches_region_contents(self):
        points, fn, a, b = random_instance(seed=77)
        result = SliceBRS().solve(points, fn, a, b)
        assert result.score == pytest.approx(fn.value(result.object_ids))
        assert sorted(result.object_ids) == sorted(
            objects_in_region(points, result.point, a, b)
        )

    def test_region_property(self):
        result = SliceBRS().solve([Point(0, 0)], SumFunction(1), a=2, b=4)
        region = result.region
        assert region.height == 2 and region.width == 4
        assert region.center == result.point


class TestAgainstNaive:
    @pytest.mark.parametrize("seed", range(25))
    def test_matches_bruteforce_diversity(self, seed):
        points, fn, a, b = random_instance(seed)
        exact = SliceBRS().solve(points, fn, a, b)
        naive = NaiveBRS().solve(points, fn, a, b)
        assert exact.score == pytest.approx(naive.score)

    @pytest.mark.parametrize("theta", [0.25, 0.5, 1.0, 2.0, 5.0])
    def test_theta_does_not_change_answer(self, theta):
        points, fn, a, b = random_instance(seed=101)
        baseline = SliceBRS(theta=1.0).solve(points, fn, a, b).score
        assert SliceBRS(theta=theta).solve(points, fn, a, b).score == pytest.approx(
            baseline
        )

    def test_no_slicing_matches(self):
        points, fn, a, b = random_instance(seed=202)
        sliced = SliceBRS().solve(points, fn, a, b).score
        unsliced = SliceBRS(slicing=False).solve(points, fn, a, b).score
        assert sliced == pytest.approx(unsliced)

    def test_exhaustive_slab_mode_matches(self):
        points, fn, a, b = random_instance(seed=303)
        pruned = SliceBRS().solve(points, fn, a, b)
        full = SliceBRS(prune_slices=False).solve(points, fn, a, b)
        assert pruned.score == pytest.approx(full.score)
        assert full.stats.n_slabs >= pruned.stats.n_slabs

    def test_strict_pruning_matches_paper_rule(self):
        points, fn, a, b = random_instance(seed=404)
        paper = SliceBRS(strict_pruning=False).solve(points, fn, a, b)
        strict = SliceBRS(strict_pruning=True).solve(points, fn, a, b)
        assert paper.score == pytest.approx(strict.score)
        assert strict.stats.n_slabs_searched <= paper.stats.n_slabs_searched

    def test_tall_and_wide_rectangles(self):
        points, fn, _, _ = random_instance(seed=505)
        for a, b in ((0.3, 6.0), (6.0, 0.3)):
            exact = SliceBRS().solve(points, fn, a, b).score
            naive = NaiveBRS().solve(points, fn, a, b).score
            assert exact == pytest.approx(naive)


class TestValidation:
    def test_validate_rejects_bad_function(self):
        class Supermodular(CoverageFunction):
            def value(self, objects):
                return float(len(set(objects)) ** 2)

        pts = [Point(float(i), float(i % 3)) for i in range(10)]
        fn = Supermodular([set() for _ in range(10)])
        with pytest.raises(ValueError):
            SliceBRS(validate=True).solve(pts, fn, a=2, b=2)

    def test_validate_accepts_good_function(self):
        points, fn, a, b = random_instance(seed=606)
        SliceBRS(validate=True).solve(points, fn, a, b)


class TestStats:
    def test_counters_populated(self):
        points, fn, a, b = random_instance(seed=707, max_objects=40)
        result = SliceBRS().solve(points, fn, a, b)
        s = result.stats
        assert s.n_objects == len(points)
        assert s.n_slices >= 1
        assert s.n_slices_scanned <= s.n_slices
        assert s.n_slabs_searched <= s.n_slabs
