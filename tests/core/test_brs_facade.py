"""Tests for the best_region facade and the stats containers."""

import pytest

from tests.helpers import random_instance
from repro.core.brs import best_region
from repro.core.stats import SearchStats


class TestBestRegion:
    def test_default_is_exact(self):
        points, fn, a, b = random_instance(seed=31)
        facade = best_region(points, fn, a, b)
        assert facade.score == pytest.approx(
            best_region(points, fn, a, b, method="naive").score
        )

    def test_cover_method_obeys_bound(self):
        points, fn, a, b = random_instance(seed=32)
        optimal = best_region(points, fn, a, b, method="naive").score
        approx = best_region(points, fn, a, b, method="cover").score
        assert approx >= 0.25 * optimal - 1e-9

    def test_cover_c_parameter(self):
        points, fn, a, b = random_instance(seed=33)
        result = best_region(points, fn, a, b, method="cover", c=0.5)
        assert result.cover_stats is not None

    def test_unknown_method(self):
        points, fn, a, b = random_instance(seed=34)
        with pytest.raises(ValueError, match="unknown method"):
            best_region(points, fn, a, b, method="magic")

    def test_theta_forwarded(self):
        points, fn, a, b = random_instance(seed=35)
        r1 = best_region(points, fn, a, b, theta=0.5)
        r2 = best_region(points, fn, a, b, theta=2.0)
        assert r1.score == pytest.approx(r2.score)


class TestSearchStats:
    def test_merge_accumulates(self):
        s1 = SearchStats(n_objects=10, n_slices=2, n_slabs=5, n_candidates=7)
        s2 = SearchStats(n_objects=10, n_slices=3, n_slabs=4, n_candidates=1)
        s1.merge(s2)
        assert s1.n_slices == 5
        assert s1.n_slabs == 9
        assert s1.n_candidates == 8
        assert s1.n_objects == 10
