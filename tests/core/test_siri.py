"""Tests for the SIRI reduction helpers."""

import pytest

from repro.core.siri import build_siri_rows, objects_in_region, rows_x_extent
from repro.geometry.point import Point
from repro.geometry.rect import Rect


class TestBuildSiriRows:
    def test_one_row_per_object(self):
        rows = build_siri_rows([Point(0, 0), Point(5, 5)], a=2, b=4)
        assert len(rows) == 2
        assert rows[0] == (-2.0, 2.0, -1.0, 1.0, 0)
        assert rows[1] == (3.0, 7.0, 4.0, 6.0, 1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_siri_rows([], a=1, b=1)

    def test_rejects_nonpositive_rect(self):
        with pytest.raises(ValueError):
            build_siri_rows([Point(0, 0)], a=0, b=1)
        with pytest.raises(ValueError):
            build_siri_rows([Point(0, 0)], a=1, b=-2)

    def test_rows_x_extent(self):
        rows = build_siri_rows([Point(0, 0), Point(10, 0)], a=1, b=2)
        assert rows_x_extent(rows) == (-1.0, 11.0)


class TestObjectsInRegion:
    def test_strict_containment(self):
        pts = [Point(0, 0), Point(1, 0), Point(0.99, 0)]
        # b=2 -> region x-extent is (-1, 1): Point(1,0) is on the boundary.
        assert objects_in_region(pts, Point(0, 0), a=2, b=2) == [0, 2]

    def test_lemma1_consistency_with_siri_rows(self):
        """o in region at p  <=>  p inside o's SIRI rectangle."""
        pts = [Point(1.3, 2.7), Point(4.0, 0.5), Point(2.2, 2.0)]
        a, b = 1.7, 2.9
        rows = build_siri_rows(pts, a, b)
        p = Point(2.0, 2.1)
        via_region = set(objects_in_region(pts, p, a, b))
        via_rows = {
            row[4]
            for row in rows
            if Rect(row[0], row[1], row[2], row[3]).contains_point(p)
        }
        assert via_region == via_rows
