"""Tests for the partitioned/parallel solver driver."""

import pytest

from tests.helpers import random_instance
from repro.core.naive import NaiveBRS
from repro.core.partitioned import _window_bounds, partitioned_best_region
from repro.core.slicebrs import SliceBRS
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point


class TestWindowBounds:
    def test_single_part(self):
        assert _window_bounds(0.0, 10.0, 1, 1.0) == [(0.0, 10.0)]

    def test_windows_overlap_by_b(self):
        windows = _window_bounds(0.0, 100.0, 4, 2.0)
        assert len(windows) == 4
        for (_, hi), (lo, _) in zip(windows, windows[1:]):
            assert hi - lo >= 2.0 - 1e-9

    def test_windows_cover_the_span(self):
        windows = _window_bounds(-5.0, 45.0, 3, 1.0)
        assert windows[0][0] <= -5.0
        assert windows[-1][1] >= 45.0

    def test_tiny_span_collapses(self):
        assert _window_bounds(0.0, 1.0, 8, 2.0) == [(0.0, 1.0)]


class TestPartitionedSolve:
    def test_rejects_bad_parts(self):
        with pytest.raises(ValueError):
            partitioned_best_region([Point(0, 0)], SumFunction(1), 1, 1, n_parts=0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            partitioned_best_region([], SumFunction(0), 1, 1)

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("n_parts", [1, 2, 5])
    def test_matches_monolithic_exact(self, seed, n_parts):
        points, fn, a, b = random_instance(seed, max_objects=30)
        split = partitioned_best_region(points, fn, a, b, n_parts=n_parts)
        whole = NaiveBRS().solve(points, fn, a, b)
        assert split.score == pytest.approx(whole.score)

    def test_score_is_reevaluated_globally(self):
        points, fn, a, b = random_instance(seed=50, max_objects=25)
        result = partitioned_best_region(points, fn, a, b, n_parts=3)
        assert result.score == pytest.approx(fn.value(result.object_ids))

    def test_parallel_workers_same_answer(self):
        points, fn, a, b = random_instance(seed=60, max_objects=35)
        sequential = partitioned_best_region(points, fn, a, b, n_parts=4)
        parallel = partitioned_best_region(points, fn, a, b, n_parts=4, workers=2)
        assert parallel.score == pytest.approx(sequential.score)

    def test_optimum_straddling_window_boundary(self):
        """A cluster exactly at a window seam must still be found whole."""
        # 10 objects tightly around x = 5 in a 0..10 span, 2 windows.
        cluster = [Point(5.0 + 0.01 * i, 1.0 + 0.01 * i) for i in range(-5, 5)]
        spread = [Point(0.5, 9.0), Point(9.5, 9.0)]
        points = cluster + spread
        fn = SumFunction(len(points))
        result = partitioned_best_region(points, fn, a=1.0, b=1.0, n_parts=2)
        assert result.score == 10.0


class TestInitialBest:
    def test_slicebrs_honours_initial_bound(self):
        points, fn, a, b = random_instance(seed=70, max_objects=25)
        optimum = SliceBRS().solve(points, fn, a, b)
        # With the bound set to the optimum, the search prunes everything
        # and falls back — but the fallback score is honest.
        bounded = SliceBRS().solve(points, fn, a, b, initial_best=optimum.score)
        assert bounded.score <= optimum.score + 1e-9
        assert bounded.score == pytest.approx(fn.value(bounded.object_ids))

    def test_initial_bound_prunes_work(self):
        points, fn, a, b = random_instance(seed=71, max_objects=40)
        cold = SliceBRS().solve(points, fn, a, b)
        warm = SliceBRS().solve(points, fn, a, b, initial_best=cold.score * 0.99)
        assert warm.stats.n_slabs_searched <= cold.stats.n_slabs_searched
        assert warm.score == pytest.approx(cold.score)