"""Tests for the partitioned/parallel solver driver."""

import math

import pytest

from tests.helpers import random_instance
from repro.core.naive import NaiveBRS
from repro.core.partitioned import (
    Shard,
    _window_bounds,
    partitioned_best_region,
    plan_shards,
)
from repro.core.slicebrs import SliceBRS
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point


class TestWindowBounds:
    def test_single_part(self):
        assert _window_bounds(0.0, 10.0, 1, 1.0) == [(0.0, 10.0)]

    def test_windows_overlap_by_b(self):
        windows = _window_bounds(0.0, 100.0, 4, 2.0)
        assert len(windows) == 4
        for (_, hi), (lo, _) in zip(windows, windows[1:]):
            assert hi - lo >= 2.0 - 1e-9

    def test_windows_cover_the_span(self):
        windows = _window_bounds(-5.0, 45.0, 3, 1.0)
        assert windows[0][0] <= -5.0
        assert windows[-1][1] >= 45.0

    def test_tiny_span_collapses(self):
        assert _window_bounds(0.0, 1.0, 8, 2.0) == [(0.0, 1.0)]


class TestWindowBoundsFallback:
    """The over-requested-parts fallback, at adversarial span/b ratios.

    When the requested count makes the stride no wider than ``b``, the
    fallback must keep the *largest* count whose stride stays strictly
    wider than ``b`` — not a truncated guess that halves the usable count
    or collapses a still-sound two-window split to one.
    """

    @pytest.mark.parametrize(
        "span,b,n_req",
        [
            (10.0, 4.9, 8),     # span/b just above 2: two windows are sound
            (10.0, 2.4, 64),    # span/b = 4.167: four windows are sound
            (7.0, 3.3, 5),      # span/b = 2.12
            (100.0, 49.9, 4),   # huge b, ratio barely above 2
            (10.0, 1.999, 16),  # ratio just above an integer (5.0025)
        ],
    )
    def test_keeps_maximal_sound_window_count(self, span, b, n_req):
        windows = _window_bounds(0.0, span, n_req, b)
        expected = max(1, min(n_req, math.ceil(span / b) - 1))
        assert len(windows) == expected
        # Invariants the exactness argument rests on.
        assert windows[0][0] == 0.0
        assert windows[-1][1] == pytest.approx(span)
        for (_, hi), (lo, _) in zip(windows, windows[1:]):
            assert hi - lo >= b - 1e-9
        if len(windows) > 1:
            assert span / len(windows) > b

    def test_ratio_just_above_two_is_not_collapsed(self):
        # The old ``int(span / (2 * b))`` fallback returned a single
        # window here; two windows with stride 5.0 > 4.9 are sound.
        assert len(_window_bounds(0.0, 10.0, 8, 4.9)) == 2

    def test_stride_never_degenerates_to_pure_overlap(self):
        for n_req in range(2, 40):
            for b in (0.3, 0.7, 1.1, 2.9, 4.999):
                windows = _window_bounds(0.0, 10.0, n_req, b)
                if len(windows) > 1:
                    assert 10.0 / len(windows) > b

    @pytest.mark.parametrize("b", [4.9, 2.6, 1.999])
    def test_exact_at_adversarial_ratio(self, b):
        """Fallback-reduced decompositions must still be exact."""
        points = [
            Point(0.17 * i % 10.0, (0.29 * i) % 10.0) for i in range(40)
        ]
        fn = SumFunction(len(points))
        split = partitioned_best_region(points, fn, a=1.3, b=b, n_parts=16)
        whole = NaiveBRS().solve(points, fn, a=1.3, b=b)
        assert split.score == pytest.approx(whole.score)


class TestPlanShards:
    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            plan_shards([], 1.0, 2)
        with pytest.raises(ValueError):
            plan_shards([Point(0, 0)], 1.0, 0)

    def test_every_object_belongs_to_a_shard(self):
        points, _, _, b = random_instance(seed=81, max_objects=40)
        shards = plan_shards(points, b, 4)
        covered = set()
        for shard in shards:
            covered.update(shard.object_ids)
        assert covered == set(range(len(points)))

    def test_members_lie_inside_their_window(self):
        points, _, _, b = random_instance(seed=82, max_objects=40)
        for shard in plan_shards(points, b, 5):
            assert isinstance(shard, Shard)
            for i in shard.object_ids:
                assert shard.x_lo <= points[i].x <= shard.x_hi

    def test_indices_are_consecutive(self):
        points, _, _, b = random_instance(seed=83, max_objects=40)
        shards = plan_shards(points, b, 6)
        assert [s.index for s in shards] == list(range(len(shards)))

    def test_some_shard_holds_each_objects_b_neighbourhood(self):
        """The completeness half of the exactness argument.

        For any candidate center (near some object), one shard must
        contain every object within b/2 horizontally — otherwise a shard
        solve could miss the optimum's full object set.
        """
        points, _, _, b = random_instance(seed=84, max_objects=50)
        shards = plan_shards(points, b, 4)
        for i, p in enumerate(points):
            neighbours = {
                j for j, q in enumerate(points) if abs(q.x - p.x) <= b / 2
            }
            assert any(
                neighbours <= set(shard.object_ids) for shard in shards
            ), f"object {i}'s b-neighbourhood split across all shards"


class TestPartitionedSolve:
    def test_rejects_bad_parts(self):
        with pytest.raises(ValueError):
            partitioned_best_region([Point(0, 0)], SumFunction(1), 1, 1, n_parts=0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            partitioned_best_region([], SumFunction(0), 1, 1)

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize("n_parts", [1, 2, 5])
    def test_matches_monolithic_exact(self, seed, n_parts):
        points, fn, a, b = random_instance(seed, max_objects=30)
        split = partitioned_best_region(points, fn, a, b, n_parts=n_parts)
        whole = NaiveBRS().solve(points, fn, a, b)
        assert split.score == pytest.approx(whole.score)

    def test_score_is_reevaluated_globally(self):
        points, fn, a, b = random_instance(seed=50, max_objects=25)
        result = partitioned_best_region(points, fn, a, b, n_parts=3)
        assert result.score == pytest.approx(fn.value(result.object_ids))

    def test_parallel_workers_same_answer(self):
        points, fn, a, b = random_instance(seed=60, max_objects=35)
        sequential = partitioned_best_region(points, fn, a, b, n_parts=4)
        parallel = partitioned_best_region(points, fn, a, b, n_parts=4, workers=2)
        assert parallel.score == pytest.approx(sequential.score)

    def test_optimum_straddling_window_boundary(self):
        """A cluster exactly at a window seam must still be found whole."""
        # 10 objects tightly around x = 5 in a 0..10 span, 2 windows.
        cluster = [Point(5.0 + 0.01 * i, 1.0 + 0.01 * i) for i in range(-5, 5)]
        spread = [Point(0.5, 9.0), Point(9.5, 9.0)]
        points = cluster + spread
        fn = SumFunction(len(points))
        result = partitioned_best_region(points, fn, a=1.0, b=1.0, n_parts=2)
        assert result.score == 10.0


class TestInitialBest:
    def test_slicebrs_honours_initial_bound(self):
        points, fn, a, b = random_instance(seed=70, max_objects=25)
        optimum = SliceBRS().solve(points, fn, a, b)
        # With the bound set to the optimum, the search prunes everything
        # and falls back — but the fallback score is honest.
        bounded = SliceBRS().solve(points, fn, a, b, initial_best=optimum.score)
        assert bounded.score <= optimum.score + 1e-9
        assert bounded.score == pytest.approx(fn.value(bounded.object_ids))

    def test_initial_bound_prunes_work(self):
        points, fn, a, b = random_instance(seed=71, max_objects=40)
        cold = SliceBRS().solve(points, fn, a, b)
        warm = SliceBRS().solve(points, fn, a, b, initial_best=cold.score * 0.99)
        assert warm.stats.n_slabs_searched <= cold.stats.n_slabs_searched
        assert warm.score == pytest.approx(cold.score)