"""SearchStats counter consistency (the paper's #MS / #MSP / #DRP).

Section 6.3 reads the solvers' work through three counters: #MS (maximal
slabs found), #MSP (maximal slabs actually searched), and #DRP (candidate
regions scored).  Pruning can only skip work, so #MSP <= #MS always, and a
solved instance must have scored at least one candidate.  These invariants
are checked on random instances, cross-checked against the naive oracle's
score, and the registry bridge is verified to republish the same numbers.
"""

import pytest

from repro.core.naive import NaiveBRS
from repro.core.slicebrs import SliceBRS
from repro.obs.metrics import MetricsRegistry, metrics_scope
from tests.helpers import random_instance

SEEDS = range(12)


class TestCounterInvariants:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_msp_le_ms_and_drp_positive(self, seed):
        points, f, a, b = random_instance(seed)
        result = SliceBRS().solve(points, f, a, b)
        s = result.stats
        assert s.n_slabs_searched <= s.n_slabs, "#MSP must not exceed #MS"
        assert s.n_candidates >= 1, "#DRP must be >= 1 on a solved instance"
        assert s.n_slices_scanned <= s.n_slices
        assert s.n_objects == len(points)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_score_matches_naive_oracle(self, seed):
        points, f, a, b = random_instance(seed)
        fast = SliceBRS().solve(points, f, a, b)
        oracle = NaiveBRS().solve(points, f, a, b)
        assert fast.score == pytest.approx(oracle.score)
        # The oracle scores every arrangement cell; pruning must not let
        # SliceBRS look at more candidates than exhaustive enumeration.
        assert fast.stats.n_candidates <= max(1, oracle.stats.n_candidates)

    def test_naive_fills_its_stats(self):
        points, f, a, b = random_instance(5, max_objects=20)
        result = NaiveBRS().solve(points, f, a, b)
        s = result.stats
        assert s.n_slices_scanned == s.n_slices
        assert s.n_candidates >= 1


class TestRegistryBridge:
    def test_publish_mirrors_search_stats(self):
        points, f, a, b = random_instance(3)
        registry = MetricsRegistry()
        with metrics_scope(registry):
            result = SliceBRS().solve(points, f, a, b)
        snap = registry.snapshot()
        s = result.stats
        assert snap["brs_slabs_total"]["value"] == s.n_slabs
        assert snap["brs_slabs_searched_total"]["value"] == s.n_slabs_searched
        assert snap["brs_candidates_total"]["value"] == s.n_candidates
        assert snap["brs_slices_total"]["value"] == s.n_slices
        assert snap["brs_slices_scanned_total"]["value"] == s.n_slices_scanned
        assert snap["brs_sweep_pushes_total"]["value"] == s.n_pushes
        assert snap["brs_slicebrs_solves_total"]["value"] == 1

    def test_counters_accumulate_across_solves(self):
        registry = MetricsRegistry()
        totals = 0
        with metrics_scope(registry):
            for seed in (0, 1):
                points, f, a, b = random_instance(seed)
                totals += SliceBRS().solve(points, f, a, b).stats.n_candidates
        snap = registry.snapshot()
        assert snap["brs_candidates_total"]["value"] == totals
        assert snap["brs_slicebrs_solves_total"]["value"] == 2

    def test_no_publish_without_scope(self):
        points, f, a, b = random_instance(0)
        registry = MetricsRegistry()
        SliceBRS().solve(points, f, a, b)  # outside any scope
        assert registry.snapshot() == {}
