"""Tests for the ScanSlab / SearchMR sweep lines."""

import random

import pytest

from repro.core.siri import build_siri_rows
from repro.core.stats import SearchStats
from repro.core.sweep import (
    count_maximal_regions,
    rows_spanning_slab,
    scan_slabs,
    search_slab,
)
from repro.functions.coverage import CoverageFunction
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point


def _rows(points, a=2.0, b=2.0):
    return build_siri_rows(points, a, b)


class TestScanSlabs:
    def test_single_rect_single_slab(self):
        rows = _rows([Point(0, 0)])
        slabs = scan_slabs(rows, SumFunction(1).evaluator())
        assert slabs == [(-1.0, 1.0, 1.0)]

    def test_disjoint_rects_two_slabs(self):
        rows = _rows([Point(0, 0), Point(10, 10)])
        slabs = scan_slabs(rows, SumFunction(2).evaluator())
        assert len(slabs) == 2
        assert all(upper == 1.0 for (_, _, upper) in slabs)

    def test_overlapping_rects_one_shared_slab(self):
        # Two rects overlapping in y: bottom edges at -1, -0.5; tops at 1, 1.5.
        rows = _rows([Point(0, 0), Point(0.5, 0.5)])
        slabs = scan_slabs(rows, SumFunction(2).evaluator())
        assert slabs == [(-0.5, 1.0, 2.0)]

    def test_slab_interiors_contain_no_edges(self):
        rng = random.Random(11)
        pts = [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(25)]
        rows = _rows(pts, a=1.5, b=1.5)
        slabs = scan_slabs(rows, SumFunction(25).evaluator())
        edges = sorted({r[2] for r in rows} | {r[3] for r in rows})
        for y_lo, y_hi, _ in slabs:
            assert not any(y_lo < e < y_hi for e in edges)

    def test_slab_bottom_is_bottom_edge_top_is_top_edge(self):
        rng = random.Random(12)
        pts = [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(25)]
        rows = _rows(pts, a=1.5, b=1.5)
        bottoms = {r[2] for r in rows}
        tops = {r[3] for r in rows}
        for y_lo, y_hi, _ in scan_slabs(rows, SumFunction(25).evaluator()):
            assert y_lo in bottoms
            assert y_hi in tops

    def test_upper_bound_is_value_of_spanning_rects(self):
        """Lemma 7: upper(s) = h(rects intersecting s)."""
        rng = random.Random(13)
        pts = [Point(rng.uniform(0, 6), rng.uniform(0, 6)) for _ in range(15)]
        labels = [{rng.randrange(6)} for _ in range(15)]
        fn = CoverageFunction(labels)
        rows = _rows(pts, a=2.2, b=2.2)
        for slab in scan_slabs(rows, fn.evaluator()):
            spanning_ids = {r[4] for r in rows_spanning_slab(rows, slab)}
            assert slab[2] == pytest.approx(fn.value(spanning_ids))

    def test_at_most_n_slabs(self):
        """Lemma 6: at most n maximal slabs."""
        rng = random.Random(14)
        pts = [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(40)]
        rows = _rows(pts)
        assert len(scan_slabs(rows, SumFunction(40).evaluator())) <= 40

    def test_stats_counters(self):
        stats = SearchStats()
        rows = _rows([Point(0, 0), Point(0.5, 0.5)])
        scan_slabs(rows, SumFunction(2).evaluator(), stats)
        assert stats.n_slabs == 1
        assert stats.n_pushes == 2

    def test_coincident_edges_handled(self):
        """Two objects exactly `a` apart produce a coincident top/bottom edge."""
        rows = _rows([Point(0, 0), Point(0.2, 2.0)], a=2.0, b=5.0)
        slabs = scan_slabs(rows, SumFunction(2).evaluator())
        # bottom edges: -1, 1; top edges: 1, 3.  Batches at y=1 mix both.
        assert len(slabs) >= 1
        for y_lo, y_hi, _ in slabs:
            assert y_lo < y_hi


class TestRowsSpanningSlab:
    def test_spanning_filter(self):
        rows = _rows([Point(0, 0), Point(0, 5)])
        slab = (-1.0, 1.0, 0.0)
        assert [r[4] for r in rows_spanning_slab(rows, slab)] == [0]


class TestSearchSlab:
    def test_finds_intersection_of_two_rects(self):
        pts = [Point(0, 0), Point(1, 0.5)]
        rows = _rows(pts)
        fn = SumFunction(2)
        slabs = scan_slabs(rows, fn.evaluator())
        best = 0.0
        best_point = None
        for slab in slabs:
            spanning = rows_spanning_slab(rows, slab)
            best, cand = search_slab(spanning, slab, fn.evaluator(), best)
            if cand is not None:
                best_point = cand
        assert best == 2.0
        assert best_point is not None
        # The point must lie inside both SIRI rects.
        assert abs(best_point.x - 0) < 1 and abs(best_point.x - 1) < 1

    def test_respects_incumbent(self):
        """Candidates not beating best_value are not returned."""
        rows = _rows([Point(0, 0)])
        slab = (-1.0, 1.0, 1.0)
        value, cand = search_slab(rows, slab, SumFunction(1).evaluator(), 5.0)
        assert value == 5.0 and cand is None

    def test_candidate_count_in_stats(self):
        stats = SearchStats()
        rows = _rows([Point(0, 0), Point(10, 0)])
        slab = (-1.0, 1.0, 2.0)
        spanning = rows_spanning_slab(rows, slab)
        search_slab(spanning, slab, SumFunction(2).evaluator(), 0.0, stats)
        assert stats.n_candidates == 2  # two disjoint x-gaps

    def test_returned_point_strictly_inside_slab(self):
        rng = random.Random(15)
        pts = [Point(rng.uniform(0, 8), rng.uniform(0, 8)) for _ in range(20)]
        rows = _rows(pts, a=1.8, b=1.8)
        fn = SumFunction(20)
        for slab in scan_slabs(rows, fn.evaluator()):
            spanning = rows_spanning_slab(rows, slab)
            _, cand = search_slab(spanning, slab, fn.evaluator(), 0.0)
            if cand is not None:
                assert slab[0] < cand.y < slab[1]


class TestCountMaximalRegions:
    def test_single_rect_is_one_maximal_region(self):
        rows = _rows([Point(0, 0)])
        slabs = scan_slabs(rows, SumFunction(1).evaluator())
        assert count_maximal_regions(rows, slabs) == 1

    def test_cross_pattern_center_is_maximal(self):
        # Tall and wide rect crossing: the center region is maximal (Fig 4).
        rows = [
            (0.0, 1.0, -2.0, 2.0, 0),  # tall
            (-2.0, 2.0, 0.0, 1.0, 1),  # wide
        ]
        slabs = scan_slabs(rows, SumFunction(2).evaluator())
        assert count_maximal_regions(rows, slabs) == 1

    def test_worst_case_grid_quadratic(self):
        """Lemma 4's construction: k tall x k wide rects -> k^2 regions."""
        k = 4
        rows = []
        idx = 0
        for i in range(k):
            rows.append((2.0 * i, 2.0 * i + 1.0, -10.0, 10.0, idx))
            idx += 1
        for j in range(k):
            rows.append((-10.0, 10.0, 2.0 * j, 2.0 * j + 1.0, idx))
            idx += 1
        slabs = scan_slabs(rows, SumFunction(idx).evaluator())
        assert count_maximal_regions(rows, slabs) == k * k
