"""Tests for the BRSResult container."""

from repro.core.result import BRSResult
from repro.core.stats import CoverStats, SearchStats
from repro.geometry.point import Point


class TestBRSResult:
    def test_region_derives_from_point_and_size(self):
        result = BRSResult(
            point=Point(10.0, 20.0),
            score=3.0,
            object_ids=[1, 2, 3],
            a=4.0,
            b=6.0,
        )
        region = result.region
        assert region.center == Point(10.0, 20.0)
        assert region.height == 4.0
        assert region.width == 6.0

    def test_default_stats(self):
        result = BRSResult(Point(0, 0), 0.0, [], 1.0, 1.0)
        assert isinstance(result.stats, SearchStats)
        assert result.cover_stats is None

    def test_cover_stats_attached(self):
        cs = CoverStats(n_original=10, n_cover=4, level=2)
        result = BRSResult(Point(0, 0), 0.0, [], 1.0, 1.0, cover_stats=cs)
        assert result.cover_stats.n_cover == 4
        assert isinstance(result.cover_stats.inner, SearchStats)
