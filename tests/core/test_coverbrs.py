"""Tests for the CoverBRS approximate solver."""

import pytest

from tests.helpers import random_instance
from repro.core.coverbrs import CoverBRS
from repro.core.naive import NaiveBRS
from repro.functions.coverage import CoverageFunction
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point
from repro.index.quadtree import Quadtree


class TestParameters:
    @pytest.mark.parametrize("c", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_c_rejected(self, c):
        with pytest.raises(ValueError):
            CoverBRS(c=c)

    def test_guarantee_known_ratios(self):
        assert CoverBRS(c=1 / 3).guarantee == pytest.approx(0.25)
        assert CoverBRS(c=1 / 2).guarantee == pytest.approx(1 / 9)
        assert CoverBRS(c=0.4).guarantee is None


class TestApproximationBounds:
    @pytest.mark.parametrize("seed", range(20))
    def test_quarter_bound_holds_c_one_third(self, seed):
        """Theorem 4: c=1/3 gives a 1/4-approximation."""
        points, fn, a, b = random_instance(seed)
        optimal = NaiveBRS().solve(points, fn, a, b).score
        approx = CoverBRS(c=1 / 3).solve(points, fn, a, b).score
        assert approx >= 0.25 * optimal - 1e-9

    @pytest.mark.parametrize("seed", range(20))
    def test_ninth_bound_holds_c_one_half(self, seed):
        """Theorem 6: c=1/2 gives a 1/9-approximation."""
        points, fn, a, b = random_instance(seed)
        optimal = NaiveBRS().solve(points, fn, a, b).score
        approx = CoverBRS(c=1 / 2).solve(points, fn, a, b).score
        assert approx >= (1 / 9) * optimal - 1e-9

    def test_never_exceeds_optimum(self):
        for seed in range(10):
            points, fn, a, b = random_instance(seed + 1000)
            optimal = NaiveBRS().solve(points, fn, a, b).score
            approx = CoverBRS(c=1 / 3).solve(points, fn, a, b).score
            assert approx <= optimal + 1e-9


class TestMechanics:
    def test_score_evaluated_on_original_instance(self):
        points, fn, a, b = random_instance(seed=42)
        result = CoverBRS(c=1 / 3).solve(points, fn, a, b)
        assert result.score == pytest.approx(fn.value(result.object_ids))

    def test_cover_stats_populated(self):
        points, fn, a, b = random_instance(seed=43, max_objects=40)
        result = CoverBRS(c=1 / 3).solve(points, fn, a, b)
        cs = result.cover_stats
        assert cs is not None
        assert cs.n_original == len(points)
        assert 1 <= cs.n_cover <= len(points)

    def test_reusing_prebuilt_quadtree(self):
        points, fn, a, b = random_instance(seed=44)
        tree = Quadtree(points)
        with_tree = CoverBRS(c=1 / 3).solve(points, fn, a, b, quadtree=tree)
        without = CoverBRS(c=1 / 3).solve(points, fn, a, b)
        assert with_tree.score == pytest.approx(without.score)

    def test_validate_mode(self):
        points, fn, a, b = random_instance(seed=45)
        CoverBRS(c=1 / 3, validate=True).solve(points, fn, a, b)

    def test_single_object(self):
        result = CoverBRS(c=1 / 3).solve([Point(2, 2)], SumFunction(1), a=1, b=1)
        assert result.score == 1.0

    def test_works_with_sum_function(self):
        pts = [Point(0, 0), Point(0.1, 0.1), Point(9, 9)]
        result = CoverBRS(c=1 / 3).solve(pts, SumFunction(3), a=2, b=2)
        assert result.score >= 1.0

    def test_dense_cluster_found(self):
        """A dominant cluster survives the cover reduction."""
        cluster = [Point(5 + 0.01 * i, 5 + 0.013 * i) for i in range(20)]
        noise = [Point(float(i), float(20 - i)) for i in range(8)]
        pts = cluster + noise
        labels = [{i} for i in range(len(pts))]
        result = CoverBRS(c=1 / 3).solve(pts, CoverageFunction(labels), a=2, b=2)
        assert result.score >= 20.0
