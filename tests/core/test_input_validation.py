"""Failure-injection tests: malformed inputs must fail loudly."""

import math

import pytest

from repro.core.naive import NaiveBRS
from repro.core.slicebrs import SliceBRS
from repro.core.siri import build_siri_rows
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point


class TestNonFiniteInputs:
    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), -float("inf")])
    def test_nan_or_inf_coordinate_rejected(self, bad):
        points = [Point(0.0, 0.0), Point(bad, 1.0)]
        with pytest.raises(ValueError, match="non-finite"):
            build_siri_rows(points, a=1.0, b=1.0)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), 0.0, -1.0])
    def test_bad_rectangle_size_rejected(self, bad):
        with pytest.raises(ValueError):
            build_siri_rows([Point(0, 0)], a=bad, b=1.0)

    def test_solvers_propagate_validation(self):
        points = [Point(float("nan"), 0.0)]
        fn = SumFunction(1)
        with pytest.raises(ValueError):
            SliceBRS().solve(points, fn, 1.0, 1.0)
        with pytest.raises(ValueError):
            NaiveBRS().solve(points, fn, 1.0, 1.0)


class TestExtremeButValidInputs:
    def test_very_large_coordinates(self):
        points = [Point(1e12, 1e12), Point(1e12 + 0.5, 1e12 + 0.5)]
        result = SliceBRS().solve(points, SumFunction(2), a=2.0, b=2.0)
        assert result.score == 2.0

    def test_very_small_rectangle(self):
        points = [Point(0.0, 0.0), Point(1.0, 1.0)]
        result = SliceBRS().solve(points, SumFunction(2), a=1e-9, b=1e-9)
        assert result.score == 1.0

    def test_negative_coordinates(self):
        points = [Point(-100.0, -200.0), Point(-99.5, -199.5)]
        result = SliceBRS().solve(points, SumFunction(2), a=2.0, b=2.0)
        assert result.score == 2.0

    def test_mixed_magnitudes(self):
        points = [Point(-1e6, 0.0), Point(0.0, 0.0), Point(1e6, 0.0)]
        result = SliceBRS().solve(points, SumFunction(3), a=1.0, b=1.0)
        assert result.score == 1.0
