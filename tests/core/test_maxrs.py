"""Tests for the MaxRS solvers (OE and adapted SliceBRS)."""

import pytest

from tests.helpers import random_sum_instance
from repro.core.maxrs import oe_maxrs, slicebrs_maxrs
from repro.core.naive import NaiveBRS
from repro.core.slicebrs import SliceBRS
from repro.geometry.point import Point


class TestOEMaxRS:
    def test_single_object(self):
        result = oe_maxrs([Point(0, 0)], a=1, b=1)
        assert result.score == 1.0
        assert result.object_ids == [0]

    def test_two_clusters_picks_heavier(self):
        pts = [Point(0, 0), Point(0.1, 0.1), Point(9, 9)]
        result = oe_maxrs(pts, a=1, b=1, weights=[1.0, 1.0, 5.0])
        assert result.score == 5.0
        assert result.object_ids == [2]

    def test_unweighted_counts(self):
        pts = [Point(0, 0), Point(0.2, 0.2), Point(0.4, 0.1)]
        result = oe_maxrs(pts, a=1, b=1)
        assert result.score == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            oe_maxrs([], a=1, b=1)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            oe_maxrs([Point(0, 0)], a=1, b=1, weights=[-1.0])

    @pytest.mark.parametrize("seed", range(20))
    def test_matches_naive(self, seed):
        points, fn, a, b = random_sum_instance(seed)
        oe = oe_maxrs(points, a, b, list(fn.weights))
        naive = NaiveBRS().solve(points, fn, a, b)
        assert oe.score == pytest.approx(naive.score)


class TestSliceBRSMaxRS:
    @pytest.mark.parametrize("seed", range(20))
    def test_matches_oe(self, seed):
        points, fn, a, b = random_sum_instance(seed + 500)
        weights = list(fn.weights)
        assert slicebrs_maxrs(points, a, b, weights).score == pytest.approx(
            oe_maxrs(points, a, b, weights).score
        )

    @pytest.mark.parametrize("seed", [3, 17, 29])
    def test_matches_general_slicebrs_on_sum(self, seed):
        """MaxRS is BRS with a modular f: all three solvers must agree."""
        points, fn, a, b = random_sum_instance(seed)
        general = SliceBRS().solve(points, fn, a, b).score
        special = slicebrs_maxrs(points, a, b, list(fn.weights)).score
        assert special == pytest.approx(general)

    def test_theta_rejected_nonpositive(self):
        with pytest.raises(ValueError):
            slicebrs_maxrs([Point(0, 0)], a=1, b=1, theta=0)

    @pytest.mark.parametrize("theta", [0.5, 1.0, 3.0])
    def test_theta_invariance(self, theta):
        points, fn, a, b = random_sum_instance(seed=777)
        weights = list(fn.weights)
        assert slicebrs_maxrs(points, a, b, weights, theta=theta).score == (
            pytest.approx(oe_maxrs(points, a, b, weights).score)
        )

    def test_stats_populated(self):
        points, fn, a, b = random_sum_instance(seed=888)
        result = slicebrs_maxrs(points, a, b, list(fn.weights))
        assert result.stats.n_slices >= 1

    def test_returned_point_achieves_score(self):
        points, fn, a, b = random_sum_instance(seed=999)
        result = slicebrs_maxrs(points, a, b, list(fn.weights))
        assert result.score == pytest.approx(fn.value(result.object_ids))


class TestSampledMaxRS:
    def test_rejects_bad_parameters(self):
        from repro.core.maxrs import sampled_maxrs

        with pytest.raises(ValueError):
            sampled_maxrs([Point(0, 0)], 1, 1, epsilon=0.0)
        with pytest.raises(ValueError):
            sampled_maxrs([Point(0, 0)], 1, 1, delta=1.5)

    def test_small_instance_is_exact(self):
        """When the sample covers everything, the answer is exact."""
        from repro.core.maxrs import oe_maxrs, sampled_maxrs

        points, fn, a, b = random_sum_instance(seed=5)
        approx = sampled_maxrs(points, a, b, epsilon=0.3, weights=list(fn.weights))
        exact = oe_maxrs(points, a, b, list(fn.weights))
        assert approx.score == pytest.approx(exact.score)

    def test_deterministic_with_seed(self):
        from repro.core.maxrs import sampled_maxrs
        from repro.datasets.synthetic import gaussian_mixture_points
        from repro.geometry.rect import Rect

        pts = gaussian_mixture_points(3000, Rect(0, 100, 0, 100), seed=3)
        r1 = sampled_maxrs(pts, 5.0, 5.0, epsilon=0.4, seed=9)
        r2 = sampled_maxrs(pts, 5.0, 5.0, epsilon=0.4, seed=9)
        assert r1.point == r2.point and r1.score == r2.score

    def test_score_reevaluated_on_full_set(self):
        from repro.core.maxrs import sampled_maxrs
        from repro.datasets.synthetic import gaussian_mixture_points
        from repro.geometry.rect import Rect

        pts = gaussian_mixture_points(3000, Rect(0, 100, 0, 100), seed=4)
        result = sampled_maxrs(pts, 5.0, 5.0, epsilon=0.4, seed=1)
        assert result.score == len(result.object_ids)

    def test_close_to_exact_on_clustered_data(self):
        """epsilon-sample argument in action: near-optimal in practice."""
        from repro.core.maxrs import oe_maxrs, sampled_maxrs
        from repro.datasets.synthetic import gaussian_mixture_points
        from repro.geometry.rect import Rect

        pts = gaussian_mixture_points(4000, Rect(0, 100, 0, 100), seed=6)
        exact = oe_maxrs(pts, 6.0, 6.0)
        approx = sampled_maxrs(pts, 6.0, 6.0, epsilon=0.2, seed=2)
        # Additive epsilon*n slack, with generous head-room for luck.
        assert approx.score >= exact.score - 0.3 * len(pts)
        assert approx.score <= exact.score
