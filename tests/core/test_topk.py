"""Tests for the top-k region extension."""

import pytest

from repro.core.topk import topk_regions
from repro.functions.coverage import CoverageFunction
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point


def _three_clusters():
    """Clusters of 4, 3, and 2 objects, far apart."""
    return (
        [Point(0 + 0.1 * i, 0.1 * i) for i in range(4)]
        + [Point(50 + 0.1 * i, 0.1 * i) for i in range(3)]
        + [Point(100 + 0.1 * i, 0.1 * i) for i in range(2)]
    )


class TestTopkRegions:
    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            topk_regions([Point(0, 0)], SumFunction(1), a=1, b=1, k=0)

    def test_returns_descending_scores(self):
        pts = _three_clusters()
        results = topk_regions(pts, SumFunction(len(pts)), a=2, b=2, k=3)
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)
        assert scores == [4.0, 3.0, 2.0]

    def test_regions_are_object_disjoint(self):
        pts = _three_clusters()
        results = topk_regions(pts, SumFunction(len(pts)), a=2, b=2, k=3)
        seen = set()
        for r in results:
            assert not (seen & set(r.object_ids))
            seen.update(r.object_ids)

    def test_first_region_is_global_optimum(self):
        pts = _three_clusters()
        results = topk_regions(pts, SumFunction(len(pts)), a=2, b=2, k=1)
        assert results[0].score == 4.0

    def test_fewer_regions_when_objects_run_out(self):
        pts = [Point(0, 0), Point(0.1, 0.1)]
        results = topk_regions(pts, SumFunction(2), a=2, b=2, k=5)
        assert len(results) == 1  # one region claims both objects

    def test_object_ids_are_original_ids(self):
        pts = _three_clusters()
        fn = CoverageFunction([{i} for i in range(len(pts))])
        results = topk_regions(pts, fn, a=2, b=2, k=2)
        assert sorted(results[0].object_ids) == [0, 1, 2, 3]
        assert sorted(results[1].object_ids) == [4, 5, 6]

    def test_zero_score_rounds_stop(self):
        pts = [Point(0, 0), Point(50, 50)]
        fn = CoverageFunction([set(), set()])  # f identically 0
        results = topk_regions(pts, fn, a=1, b=1, k=3)
        assert len(results) <= 2
