"""Tests for the ASCII visualization helpers."""

import pytest

from repro.core.slicebrs import SliceBRS
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.viz import ascii_map, render_result


class TestAsciiMap:
    def test_dimensions(self):
        art = ascii_map([Point(0, 0), Point(10, 10)], width=40, height=12)
        lines = art.splitlines()
        assert len(lines) == 12
        assert all(len(line) == 40 for line in lines)

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            ascii_map([])

    def test_tiny_canvas_rejected(self):
        with pytest.raises(ValueError):
            ascii_map([Point(0, 0)], width=1, height=10)

    def test_dense_cell_darker_than_sparse(self):
        cluster = [Point(1.0 + 0.001 * i, 1.0) for i in range(50)]
        lone = [Point(9.0, 9.0)]
        art = ascii_map(cluster + lone, width=20, height=10)
        assert "@" in art  # the cluster peaks the ramp

    def test_region_overlay_corners(self):
        pts = [Point(float(i), float(j)) for i in range(10) for j in range(10)]
        art = ascii_map(pts, region=Rect(2, 7, 2, 7), width=30, height=15)
        assert art.count("+") >= 4
        assert "-" in art and "|" in art

    def test_region_outside_space_is_clamped(self):
        art = ascii_map(
            [Point(0, 0), Point(1, 1)], region=Rect(-100, 100, -100, 100)
        )
        assert "+" in art  # clamped to the border, no crash

    def test_orientation_top_row_is_max_y(self):
        art = ascii_map(
            [Point(0.0, 10.0)], space=Rect(-1, 1, -1, 11), width=10, height=10
        )
        lines = art.splitlines()
        assert lines[0].strip()  # the point renders near the top
        assert not lines[-1].strip()


class TestRenderResult:
    def test_caption_contains_score(self):
        pts = [Point(0, 0), Point(0.5, 0.5), Point(9, 9)]
        result = SliceBRS().solve(pts, SumFunction(3), a=2, b=2)
        rendered = render_result(pts, result)
        assert f"score={result.score:.2f}" in rendered
        assert "+" in rendered
