"""Tests for the exploratory search session."""

import pytest

from tests.helpers import random_instance
from repro.core.session import ExplorationSession
from repro.core.slicebrs import SliceBRS
from repro.functions.coverage import CoverageFunction
from repro.geometry.point import Point


@pytest.fixture()
def session():
    points, fn, _, _ = random_instance(seed=321, max_objects=30)
    return ExplorationSession(points, fn), points, fn


class TestLifecycle:
    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError):
            ExplorationSession([], CoverageFunction([]))

    def test_explore_appends_history(self, session):
        sess, _, _ = session
        sess.explore(2.0, 2.0)
        sess.explore(3.0, 1.0)
        assert len(sess.history) == 2
        assert sess.last.a == 3.0
        assert sess.last.method == "cover"

    def test_history_is_immutable_view(self, session):
        sess, _, _ = session
        sess.explore(1.0, 1.0)
        assert isinstance(sess.history, tuple)


class TestExploreConfirm:
    def test_explore_is_bounded_approximation(self, session):
        sess, points, fn = session
        approx = sess.explore(2.5, 2.5)
        exact = SliceBRS().solve(points, fn, 2.5, 2.5)
        assert approx.score >= 0.25 * exact.score - 1e-9
        assert approx.score <= exact.score + 1e-9

    def test_confirm_defaults_to_last_size(self, session):
        sess, points, fn = session
        sess.explore(2.0, 3.0)
        confirmed = sess.confirm()
        assert sess.last.method == "slice"
        assert sess.last.a == 2.0 and sess.last.b == 3.0
        assert confirmed.score == pytest.approx(
            SliceBRS().solve(points, fn, 2.0, 3.0).score
        )

    def test_confirm_without_history_requires_size(self, session):
        sess, _, _ = session
        with pytest.raises(ValueError, match="pass a and b"):
            sess.confirm()
        sess.confirm(2.0, 2.0)  # explicit size works from a cold start

    def test_confirm_never_below_explore(self, session):
        sess, _, _ = session
        approx = sess.explore(2.0, 2.0)
        exact = sess.confirm()
        assert exact.score >= approx.score - 1e-9


class TestRefine:
    def test_refine_scales_last_rectangle(self, session):
        sess, _, _ = session
        sess.explore(2.0, 4.0)
        sess.refine(scale_a=2.0)
        assert sess.last.a == 4.0 and sess.last.b == 4.0
        sess.refine(scale_b=0.5)
        assert sess.last.a == 4.0 and sess.last.b == 2.0

    def test_refine_requires_history(self, session):
        sess, _, _ = session
        with pytest.raises(ValueError, match="explore"):
            sess.refine()

    def test_refine_rejects_bad_factor(self, session):
        sess, _, _ = session
        sess.explore(1.0, 1.0)
        with pytest.raises(ValueError):
            sess.refine(scale_a=0.0)


class TestInspection:
    def test_inspect_returns_region_contents(self, session):
        sess, points, fn = session
        result = sess.explore(3.0, 3.0)
        contents = sess.inspect(result)
        assert sorted(obj_id for obj_id, _ in contents) == sorted(result.object_ids)
        for obj_id, location in contents:
            assert location == points[obj_id]

    def test_best_so_far(self, session):
        sess, _, _ = session
        assert sess.best_so_far() is None
        sess.explore(0.5, 0.5)
        sess.explore(4.0, 4.0)  # bigger window can only score >= smaller
        best = sess.best_so_far()
        assert best.result.score == max(r.result.score for r in sess.history)


class TestGrowingWindowMonotonicity:
    def test_confirmed_score_monotone_in_window(self):
        """With monotone f, the exact optimum is monotone in (a, b)."""
        points, fn, _, _ = random_instance(seed=99, max_objects=25)
        sess = ExplorationSession(points, fn)
        small = sess.confirm(1.0, 1.0)
        large = sess.confirm(4.0, 4.0)
        assert large.score >= small.score - 1e-9


class TestSessionResultCache:
    def _cached_session(self, seed=321):
        from repro.serve.cache import ResultCache

        points, fn, a, b = random_instance(seed=seed, max_objects=30)
        cache = ResultCache(32)
        sess = ExplorationSession(points, fn, cache=cache, dataset_id="s1")
        return sess, cache, a, b

    def test_uncached_session_records_none(self, session):
        sess, _, _ = session
        sess.explore(2.0, 2.0)
        assert sess.last.cache_hit is None

    def test_repeat_explore_hits_the_cache(self):
        sess, cache, a, b = self._cached_session()
        first = sess.explore(a, b)
        second = sess.explore(a, b)
        assert [r.cache_hit for r in sess.history] == [False, True]
        assert second == first
        assert cache.stats.hits == 1

    def test_explore_and_confirm_never_shadow_each_other(self):
        sess, _, a, b = self._cached_session()
        sess.explore(a, b)
        confirmed = sess.confirm(a, b)
        # The confirm is a miss (different contract), and is exact.
        assert sess.last.cache_hit is False
        assert sess.last.method == "slice"
        exact = SliceBRS().solve(sess._points, sess._f, a, b)
        assert confirmed.score == pytest.approx(exact.score)

    def test_repeat_confirm_hits_and_preserves_method(self):
        sess, _, a, b = self._cached_session(seed=322)
        sess.confirm(a, b)
        again = sess.confirm(a, b)
        assert sess.last.cache_hit is True
        assert sess.last.method == "slice"
        assert again.status == "ok"

    def test_invalidate_cache_forces_a_resolve(self):
        sess, cache, a, b = self._cached_session(seed=323)
        sess.explore(a, b)
        assert sess.invalidate_cache() == 2
        assert len(cache) == 0
        sess.explore(a, b)
        assert sess.last.cache_hit is False

    def test_sessions_with_different_parameters_do_not_share(self):
        from repro.serve.cache import ResultCache

        points, fn, a, b = random_instance(seed=324, max_objects=25)
        cache = ResultCache(32)
        one = ExplorationSession(points, fn, theta=1.0, cache=cache,
                                 dataset_id="shared")
        two = ExplorationSession(points, fn, theta=2.0, cache=cache,
                                 dataset_id="shared")
        one.explore(a, b)
        two.explore(a, b)
        assert two.last.cache_hit is False

    def test_cached_result_has_honest_score(self):
        sess, _, a, b = self._cached_session(seed=325)
        sess.explore(a, b)
        hit = sess.explore(a, b)
        assert hit.score == pytest.approx(sess._f.value(hit.object_ids))
