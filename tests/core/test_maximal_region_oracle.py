"""Brute-force verification of count_maximal_regions (Definition 5).

The sweep-based counter feeds Tables 4–6, so it gets an independent
oracle: enumerate every elementary cell of the rectangle arrangement,
merge adjacent cells with identical affected sets into disjoint regions,
and check Definition 5's five conditions literally on each region.
O(n^4)-ish — tiny instances only, which is the point.
"""

import itertools
import random

from repro.core.siri import build_siri_rows
from repro.core.sweep import count_maximal_regions, scan_slabs
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point


def _affected(rows, x, y):
    """Ids of rows whose open interior contains (x, y)."""
    return frozenset(
        r[4] for r in rows if r[0] < x < r[1] and r[2] < y < r[3]
    )


def _bruteforce_maximal_regions(rows):
    """Count maximal regions per Definition 5, from first principles."""
    xs = sorted({r[0] for r in rows} | {r[1] for r in rows})
    ys = sorted({r[2] for r in rows} | {r[3] for r in rows})
    x_gaps = list(zip(xs, xs[1:]))
    y_gaps = list(zip(ys, ys[1:]))

    # Cell grid: affected set per elementary cell.
    cells = {}
    for i, (x1, x2) in enumerate(x_gaps):
        for j, (y1, y2) in enumerate(y_gaps):
            cells[(i, j)] = _affected(rows, (x1 + x2) / 2, (y1 + y2) / 2)

    # Merge adjacent same-set cells into disjoint regions (flood fill).
    seen = set()
    count = 0
    for start in cells:
        if start in seen or not cells[start]:
            continue
        component = []
        stack = [start]
        seen.add(start)
        while stack:
            cell = stack.pop()
            component.append(cell)
            i, j = cell
            for neighbor in ((i - 1, j), (i + 1, j), (i, j - 1), (i, j + 1)):
                if (
                    neighbor in cells
                    and neighbor not in seen
                    and cells[neighbor] == cells[start]
                ):
                    seen.add(neighbor)
                    stack.append(neighbor)
        if _is_maximal(rows, component, x_gaps, y_gaps):
            count += 1
    return count


def _is_maximal(rows, component, x_gaps, y_gaps):
    """Check Definition 5 on a merged disjoint region."""
    is_ = {cell[0] for cell in component}
    js = {cell[1] for cell in component}
    # (1) rectangular: the component must fill its bounding cell-box.
    if len(component) != len(is_) * len(js_ := js):
        return False
    x_lo = x_gaps[min(is_)][0]
    x_hi = x_gaps[max(is_)][1]
    y_lo = y_gaps[min(js_)][0]
    y_hi = y_gaps[max(js_)][1]
    mid_y = (y_lo + y_hi) / 2
    mid_x = (x_lo + x_hi) / 2
    # (2)-(5): each boundary must lie on the right kind of rectangle edge,
    # with that edge actually covering the boundary segment.
    left_ok = any(
        r[0] == x_lo and r[2] <= y_lo and r[3] >= y_hi for r in rows
    )
    right_ok = any(
        r[1] == x_hi and r[2] <= y_lo and r[3] >= y_hi for r in rows
    )
    top_ok = any(
        r[3] == y_hi and r[0] <= x_lo and r[1] >= x_hi for r in rows
    )
    bottom_ok = any(
        r[2] == y_lo and r[0] <= x_lo and r[1] >= x_hi for r in rows
    )
    del mid_x, mid_y
    return left_ok and right_ok and top_ok and bottom_ok


class TestCountMaximalRegionsOracle:
    def test_matches_bruteforce_on_random_instances(self):
        rng = random.Random(17)
        for trial in range(40):
            n = rng.randint(1, 10)
            pts = [
                Point(rng.uniform(0, 8), rng.uniform(0, 8)) for _ in range(n)
            ]
            a = rng.uniform(1.0, 4.0)
            b = rng.uniform(1.0, 4.0)
            rows = build_siri_rows(pts, a, b)
            slabs = scan_slabs(rows, SumFunction(n).evaluator())
            fast = count_maximal_regions(rows, slabs)
            slow = _bruteforce_maximal_regions(rows)
            assert fast == slow, (trial, n, a, b)

    def test_matches_bruteforce_on_lattice_ties(self):
        """Coincident edges (objects exactly a or b apart) still agree."""
        rng = random.Random(23)
        for trial in range(30):
            n = rng.randint(2, 8)
            pts = [
                Point(rng.randint(0, 6) * 0.5, rng.randint(0, 6) * 0.5)
                for _ in range(n)
            ]
            # De-duplicate exact coincidences; ties in single coordinates stay.
            pts = list(dict.fromkeys(pts))
            rows = build_siri_rows(pts, a=1.0, b=1.5)
            slabs = scan_slabs(rows, SumFunction(len(pts)).evaluator())
            fast = count_maximal_regions(rows, slabs)
            slow = _bruteforce_maximal_regions(rows)
            assert fast == slow, (trial, pts)
