"""Tests for the brute-force oracle solver."""

import pytest

from repro.core.naive import NaiveBRS
from repro.functions.coverage import CoverageFunction
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point


class TestNaiveBRS:
    def test_single_object(self):
        result = NaiveBRS().solve([Point(0, 0)], SumFunction(1), a=1, b=1)
        assert result.score == 1.0

    def test_two_far_objects_cannot_be_joined(self):
        pts = [Point(0, 0), Point(100, 100)]
        result = NaiveBRS().solve(pts, SumFunction(2), a=1, b=1)
        assert result.score == 1.0

    def test_two_near_objects_joined(self):
        pts = [Point(0, 0), Point(0.5, 0.5)]
        result = NaiveBRS().solve(pts, SumFunction(2), a=2, b=2)
        assert result.score == 2.0

    def test_hand_computed_diversity(self):
        # Three objects in a row, 1 apart; rect width covers two neighbours.
        pts = [Point(0, 0), Point(1, 0), Point(2, 0)]
        fn = CoverageFunction([{"a"}, {"a"}, {"b"}])
        result = NaiveBRS().solve(pts, fn, a=1.0, b=2.5)
        # Best: cover objects 1 and 2 -> {a, b}.
        assert result.score == 2.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            NaiveBRS().solve([], SumFunction(0), a=1, b=1)

    def test_score_matches_point(self):
        pts = [Point(0.3, 0.1), Point(0.8, 0.4), Point(5, 5)]
        fn = SumFunction(3, [1.0, 2.0, 10.0])
        result = NaiveBRS().solve(pts, fn, a=1, b=1)
        assert result.score == pytest.approx(fn.value(result.object_ids))

    def test_counts_candidates(self):
        pts = [Point(0, 0), Point(3, 3)]
        result = NaiveBRS().solve(pts, SumFunction(2), a=1, b=1)
        assert result.stats.n_candidates > 0
