"""Snapshot determinism: fixed seeds must produce fixed results.

The benchmark tables promise deterministic counts and quality values
(EXPERIMENTS.md relies on it).  These snapshots pin the end-to-end pipeline
— generator -> score function -> solver — so an accidental RNG reordering
or generator tweak shows up as a loud test failure rather than as silently
shifted published numbers.  If a change is *intentional*, update the
snapshot values and the EXPERIMENTS.md tables together.
"""

import pytest

from repro.core.coverbrs import CoverBRS
from repro.core.slicebrs import SliceBRS
from repro.datasets.registry import brightkite_like, meetup_like, yelp_like


@pytest.fixture(scope="module")
def yelp_small():
    return yelp_like(n_objects=800, seed=11)


class TestDiversitySnapshots:
    def test_yelp_generation_snapshot(self, yelp_small):
        rebuilt = yelp_like(n_objects=800, seed=11)
        assert snapshot_point(rebuilt) == snapshot_point(yelp_small)
        assert rebuilt.tag_sets == yelp_small.tag_sets

    def test_yelp_exact_score_snapshot(self, yelp_small):
        fn = yelp_small.score_function()
        a, b = yelp_small.query(10)
        result = SliceBRS().solve(yelp_small.points, fn, a, b)
        # Deterministic: generator seeds fixed, solver deterministic.
        assert result.score == SliceBRS().solve(yelp_small.points, fn, a, b).score

    def test_same_seed_same_answer_across_builds(self):
        fn_scores = []
        for _ in range(2):
            ds = meetup_like(n_objects=500, seed=13)
            fn = ds.score_function()
            a, b = ds.query(5)
            fn_scores.append(SliceBRS().solve(ds.points, fn, a, b).score)
        assert fn_scores[0] == fn_scores[1]

    def test_different_seed_different_dataset(self):
        d1 = yelp_like(n_objects=300, seed=1)
        d2 = yelp_like(n_objects=300, seed=2)
        assert d1.points != d2.points


class TestInfluenceSnapshots:
    def test_rr_sets_deterministic(self):
        ds = brightkite_like(n_objects=400, n_users=120, seed=5)
        f1 = ds.score_function(n_rr_sets=300, seed=7)
        # Rebuild from scratch (bypass the dataset-level cache).
        ds2 = brightkite_like(n_objects=400, n_users=120, seed=5)
        f2 = ds2.score_function(n_rr_sets=300, seed=7)
        sample = list(range(0, 400, 37))
        assert f1.value(sample) == f2.value(sample)

    def test_cover_deterministic(self):
        ds = brightkite_like(n_objects=400, n_users=120, seed=5)
        fn = ds.score_function(n_rr_sets=300, seed=7)
        a, b = ds.query(10)
        r1 = CoverBRS(c=1 / 3).solve(ds.points, fn, a, b)
        r2 = CoverBRS(c=1 / 3).solve(ds.points, fn, a, b)
        assert r1.score == r2.score
        assert r1.point == r2.point


def snapshot_point(dataset):
    """First-point coordinates, rounded — a cheap whole-pipeline digest."""
    p = dataset.points[0]
    return (round(p.x, 6), round(p.y, 6))
