"""End-to-end integration tests over the dataset analogs.

These exercise the full pipeline each application uses: dataset generation
-> score function construction -> all solvers -> result consistency.  They
assert the *qualitative* relationships the paper's evaluation reports, which
is what the benchmarks then quantify.
"""

import pytest

from repro.core.coverbrs import CoverBRS
from repro.core.maxrs import oe_maxrs, slicebrs_maxrs
from repro.core.slicebrs import SliceBRS
from repro.core.topk import topk_regions
from repro.datasets.registry import (
    brightkite_like,
    gowalla_like,
    meetup_like,
    yelp_like,
)


@pytest.fixture(scope="module")
def yelp():
    return yelp_like(n_objects=1200, seed=3)


@pytest.fixture(scope="module")
def brightkite():
    return brightkite_like(n_objects=800, n_users=250, seed=5)


class TestDiversityPipeline:
    def test_solver_quality_ordering(self, yelp):
        """Figure 12's ordering: SliceBRS >= CoverBRS >= its bound; OE worst-ish."""
        fn = yelp.score_function()
        a, b = yelp.query(10)
        exact = SliceBRS().solve(yelp.points, fn, a, b)
        cover4 = CoverBRS(c=1 / 3).solve(yelp.points, fn, a, b)
        cover9 = CoverBRS(c=1 / 2).solve(yelp.points, fn, a, b)
        oe = oe_maxrs(yelp.points, a, b)
        oe_quality = fn.value(oe.object_ids)

        assert exact.score >= cover4.score >= 0.25 * exact.score
        assert exact.score >= cover9.score >= exact.score / 9.0
        assert oe_quality < exact.score  # density is not diversity here

    def test_exploratory_refinement(self, yelp):
        """Growing the query never decreases the optimal score (monotone f,
        nested regions around the larger optimum... weaker: score at 20q
        >= score at q)."""
        fn = yelp.score_function()
        scores = []
        for k in (1, 5, 10, 20):
            a, b = yelp.query(k)
            scores.append(SliceBRS().solve(yelp.points, fn, a, b).score)
        assert scores[-1] >= scores[0]

    def test_topk_on_dataset(self, yelp):
        fn = yelp.score_function()
        a, b = yelp.query(5)
        results = topk_regions(yelp.points, fn, a, b, k=3)
        assert len(results) == 3
        scores = [r.score for r in results]
        assert scores == sorted(scores, reverse=True)

    def test_cover_stats_reduction(self, yelp):
        """Table 6: the c-cover is genuinely smaller than O."""
        fn = yelp.score_function()
        a, b = yelp.query(10)
        result = CoverBRS(c=1 / 3).solve(yelp.points, fn, a, b)
        assert result.cover_stats.n_cover < len(yelp.points)


class TestInfluencePipeline:
    def test_exact_beats_oe_quality(self, brightkite):
        fn = brightkite.score_function(n_rr_sets=800, seed=2)
        a, b = brightkite.query(10)
        exact = SliceBRS().solve(brightkite.points, fn, a, b)
        oe = oe_maxrs(brightkite.points, a, b)
        assert fn.value(oe.object_ids) <= exact.score

    def test_cover_bound_on_influence(self, brightkite):
        fn = brightkite.score_function(n_rr_sets=800, seed=2)
        a, b = brightkite.query(10)
        exact = SliceBRS().solve(brightkite.points, fn, a, b)
        cover = CoverBRS(c=1 / 3).solve(brightkite.points, fn, a, b)
        assert cover.score >= 0.25 * exact.score - 1e-9

    def test_influence_score_is_spread_of_seeds(self, brightkite):
        """The region's score is the RIS spread of its visiting users."""
        fn = brightkite.score_function(n_rr_sets=800, seed=2)
        a, b = brightkite.query(10)
        result = SliceBRS().solve(brightkite.points, fn, a, b)
        seeds = brightkite.checkins.seed_users(result.object_ids)
        assert result.score == pytest.approx(fn.estimator.spread(seeds))


class TestMaxRSPipeline:
    def test_adapted_slicebrs_equals_oe_on_real_shapes(self, yelp):
        a, b = yelp.query(10)
        assert slicebrs_maxrs(yelp.points, a, b).score == pytest.approx(
            oe_maxrs(yelp.points, a, b).score
        )

    def test_larger_datasets_gowalla_meetup_smoke(self):
        """The two larger analogs build and solve end to end."""
        meetup = meetup_like(n_objects=1500, seed=4)
        fn = meetup.score_function()
        a, b = meetup.query(5)
        result = SliceBRS().solve(meetup.points, fn, a, b)
        assert result.score > 0

        gowalla = gowalla_like(n_objects=900, n_users=250, seed=6)
        gfn = gowalla.score_function(n_rr_sets=500, seed=1)
        ga, gb = gowalla.query(5)
        gresult = CoverBRS(c=1 / 3).solve(gowalla.points, gfn, ga, gb)
        assert gresult.score >= 0
