"""Tests for the STR-packed R-tree."""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.rtree import RTree


def _random_points(n, seed=0):
    rng = random.Random(seed)
    return [Point(rng.uniform(-50, 50), rng.uniform(-50, 50)) for _ in range(n)]


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RTree([])

    def test_rejects_tiny_fanout(self):
        with pytest.raises(ValueError):
            RTree([Point(0, 0)], fanout=1)

    def test_single_point(self):
        tree = RTree([Point(1, 2)])
        assert tree.height == 1
        assert tree.query_rect(Rect(0, 2, 1, 3)) == [0]

    def test_height_is_logarithmic(self):
        tree = RTree(_random_points(1000), fanout=16)
        # 1000 points at fanout 16: leaves <= 63, so height 3 suffices.
        assert tree.height <= 3


class TestQueries:
    def test_matches_linear_scan(self):
        rng = random.Random(2)
        pts = _random_points(500, seed=2)
        tree = RTree(pts, fanout=8)
        for _ in range(100):
            x, y = rng.uniform(-60, 60), rng.uniform(-60, 60)
            rect = Rect(x, x + rng.uniform(1, 40), y, y + rng.uniform(1, 40))
            expected = sorted(i for i, p in enumerate(pts) if rect.contains_point(p))
            assert sorted(tree.query_rect(rect)) == expected

    def test_open_semantics(self):
        tree = RTree([Point(0, 0), Point(1, 1)])
        assert tree.query_rect(Rect(-1, 1, -1, 1)) == [0]

    def test_agrees_with_grid_index(self):
        from repro.index.grid import GridIndex

        pts = _random_points(300, seed=3)
        tree = RTree(pts)
        grid = GridIndex(pts, cell_size=9.0)
        rng = random.Random(4)
        for _ in range(50):
            x, y = rng.uniform(-55, 55), rng.uniform(-55, 55)
            rect = Rect(x, x + 13.0, y, y + 7.0)
            assert sorted(tree.query_rect(rect)) == sorted(grid.query_rect(rect))

    def test_query_center_and_count(self):
        tree = RTree([Point(0, 0), Point(5, 5)])
        assert tree.query_center(Point(0, 0), 2, 2) == [0]
        assert tree.count_rect(Rect(-1, 6, -1, 6)) == 2

    @pytest.mark.parametrize("fanout", [2, 4, 64])
    def test_fanout_does_not_change_results(self, fanout):
        pts = _random_points(200, seed=5)
        rect = Rect(-10, 20, -15, 25)
        baseline = sorted(RTree(pts, fanout=16).query_rect(rect))
        assert sorted(RTree(pts, fanout=fanout).query_rect(rect)) == baseline

    def test_duplicate_points(self):
        pts = [Point(1.0, 1.0)] * 10
        tree = RTree(pts, fanout=4)
        assert sorted(tree.query_rect(Rect(0, 2, 0, 2))) == list(range(10))
