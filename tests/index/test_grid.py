"""Tests for the uniform grid index."""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.grid import GridIndex


class TestConstruction:
    def test_rejects_zero_cell(self):
        with pytest.raises(ValueError):
            GridIndex([Point(0, 0)], cell_size=0.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GridIndex([], cell_size=1.0)

    def test_cell_size_property(self):
        assert GridIndex([Point(0, 0)], cell_size=2.5).cell_size == 2.5


class TestQueries:
    def test_open_rect_semantics(self):
        grid = GridIndex([Point(0, 0), Point(1, 1)], cell_size=1.0)
        # Point (1,1) sits exactly on the query boundary -> excluded.
        assert grid.query_rect(Rect(-1, 1, -1, 1)) == [0]

    def test_matches_linear_scan_on_random_data(self):
        rng = random.Random(4)
        pts = [Point(rng.uniform(-50, 50), rng.uniform(-50, 50)) for _ in range(300)]
        grid = GridIndex(pts, cell_size=7.0)
        for _ in range(50):
            x, y = rng.uniform(-60, 60), rng.uniform(-60, 60)
            rect = Rect(x, x + rng.uniform(1, 30), y, y + rng.uniform(1, 30))
            expected = sorted(i for i, p in enumerate(pts) if rect.contains_point(p))
            assert sorted(grid.query_rect(rect)) == expected

    def test_query_far_away_is_empty(self):
        grid = GridIndex([Point(0, 0)], cell_size=1.0)
        assert grid.query_rect(Rect(100, 101, 100, 101)) == []

    def test_negative_coordinates(self):
        grid = GridIndex([Point(-5.5, -5.5), Point(-4.5, -4.5)], cell_size=1.0)
        assert sorted(grid.query_rect(Rect(-6, -4, -6, -4))) == [0, 1]

    def test_count_rect(self):
        grid = GridIndex([Point(i, i) for i in range(10)], cell_size=2.0)
        assert grid.count_rect(Rect(-0.5, 4.5, -0.5, 4.5)) == 5

    def test_query_center(self):
        grid = GridIndex([Point(0, 0), Point(3, 0)], cell_size=1.0)
        assert grid.query_center(Point(0, 0), width=2, height=2) == [0]
