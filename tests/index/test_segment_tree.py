"""Tests for the lazy range-add / range-max segment tree."""

import random

import pytest

from repro.index.segment_tree import MaxAddSegmentTree


class _BruteTree:
    """Array reference implementation."""

    def __init__(self, size):
        self.values = [0.0] * size

    def add(self, lo, hi, delta):
        for i in range(lo, hi + 1):
            self.values[i] += delta

    def max_with_index(self):
        best = max(self.values)
        return best, self.values.index(best)


class TestConstruction:
    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            MaxAddSegmentTree(0)

    def test_initial_max_is_zero(self):
        assert MaxAddSegmentTree(8).max_value() == 0.0


class TestOperations:
    def test_single_leaf(self):
        tree = MaxAddSegmentTree(1)
        tree.add(0, 0, 5.0)
        assert tree.max_with_index() == (5.0, 0)

    def test_point_updates(self):
        tree = MaxAddSegmentTree(4)
        tree.add(2, 2, 3.0)
        tree.add(1, 1, 7.0)
        assert tree.max_with_index() == (7.0, 1)

    def test_range_update(self):
        tree = MaxAddSegmentTree(8)
        tree.add(2, 5, 1.0)
        tree.add(4, 7, 1.0)
        assert tree.max_with_index() == (2.0, 4)

    def test_negative_deltas(self):
        tree = MaxAddSegmentTree(4)
        tree.add(0, 3, 5.0)
        tree.add(1, 2, -5.0)
        value, index = tree.max_with_index()
        assert value == 5.0 and index in (0, 3)

    def test_leftmost_tie_break(self):
        tree = MaxAddSegmentTree(6)
        tree.add(1, 1, 2.0)
        tree.add(4, 4, 2.0)
        assert tree.max_with_index() == (2.0, 1)

    def test_out_of_range_raises(self):
        tree = MaxAddSegmentTree(4)
        with pytest.raises(IndexError):
            tree.add(2, 4, 1.0)
        with pytest.raises(IndexError):
            tree.add(-1, 2, 1.0)
        with pytest.raises(IndexError):
            tree.add(3, 2, 1.0)

    def test_value_at(self):
        tree = MaxAddSegmentTree(5)
        tree.add(0, 4, 1.0)
        tree.add(2, 3, 2.5)
        assert tree.value_at(0) == 1.0
        assert tree.value_at(2) == 3.5
        with pytest.raises(IndexError):
            tree.value_at(5)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("size", [1, 2, 3, 7, 16, 33])
    def test_random_operation_sequences(self, size):
        rng = random.Random(size)
        tree = MaxAddSegmentTree(size)
        brute = _BruteTree(size)
        for _ in range(300):
            lo = rng.randrange(size)
            hi = rng.randrange(lo, size)
            delta = rng.uniform(-3, 5)
            tree.add(lo, hi, delta)
            brute.add(lo, hi, delta)
            tree_max, tree_idx = tree.max_with_index()
            brute_max, brute_idx = brute.max_with_index()
            assert tree_max == pytest.approx(brute_max)
            assert tree_idx == brute_idx
            probe = rng.randrange(size)
            assert tree.value_at(probe) == pytest.approx(brute.values[probe])
