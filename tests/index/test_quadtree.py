"""Tests for the point quadtree."""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.quadtree import Quadtree


def _random_points(n, seed=0):
    rng = random.Random(seed)
    return [Point(rng.uniform(0, 100), rng.uniform(0, 100)) for _ in range(n)]


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Quadtree([])

    def test_rejects_point_outside_space(self):
        with pytest.raises(ValueError):
            Quadtree([Point(5, 5)], space=Rect(0, 1, 0, 1))

    def test_default_space_contains_all_points(self):
        pts = _random_points(50)
        tree = Quadtree(pts)
        for p in pts:
            assert tree.space.x_min <= p.x <= tree.space.x_max
            assert tree.space.y_min <= p.y <= tree.space.y_max

    def test_single_point_is_leaf_root(self):
        tree = Quadtree([Point(1, 1)], space=Rect(0, 2, 0, 2))
        assert tree.root.is_leaf
        assert tree.root.object_ids == [0]


class TestPartitioning:
    def test_leaves_hold_at_most_one_point(self):
        tree = Quadtree(_random_points(200, seed=1))
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert len(node.object_ids) <= 1
            else:
                assert not node.object_ids
                stack.extend(node.children)

    def test_every_object_in_exactly_one_leaf(self):
        pts = _random_points(100, seed=2)
        tree = Quadtree(pts)
        seen = []
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                seen.extend(node.object_ids)
            else:
                stack.extend(node.children)
        assert sorted(seen) == list(range(100))

    def test_objects_inside_their_node_region(self):
        pts = _random_points(100, seed=3)
        tree = Quadtree(pts)
        stack = [tree.root]
        while stack:
            node = stack.pop()
            for obj_id in node.object_ids:
                p = pts[obj_id]
                assert node.rect.x_min <= p.x <= node.rect.x_max
                assert node.rect.y_min <= p.y <= node.rect.y_max
            if not node.is_leaf:
                stack.extend(node.children)

    def test_children_quarter_the_region(self):
        rng = random.Random(4)
        pts = [Point(rng.uniform(0, 8), rng.uniform(0, 8)) for _ in range(10)]
        tree = Quadtree(pts, space=Rect(0, 8, 0, 8))
        if not tree.root.is_leaf:
            for child in tree.root.children:
                assert child.rect.width == 4.0
                assert child.rect.height == 4.0

    def test_coincident_points_stop_at_max_depth(self):
        pts = [Point(1.0, 1.0)] * 5 + [Point(2.0, 2.0)]
        tree = Quadtree(pts, space=Rect(0, 4, 0, 4), max_depth=6)
        deepest = []
        stack = [tree.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                deepest.append((node.depth, len(node.object_ids)))
            else:
                stack.extend(node.children)
        assert all(depth <= 6 for depth, _ in deepest)
        assert any(count == 5 for _, count in deepest)


class TestTruncatedNodes:
    def test_frontier_partitions_objects(self):
        pts = _random_points(150, seed=5)
        tree = Quadtree(pts)
        for depth in (0, 1, 2, 3, 5):
            ids = []
            for node in tree.truncated_nodes(depth):
                assert node.depth <= depth
                ids.extend(tree.objects_under(node))
            assert sorted(ids) == list(range(150))

    def test_depth_zero_is_root(self):
        tree = Quadtree(_random_points(20, seed=6))
        nodes = list(tree.truncated_nodes(0))
        assert len(nodes) == 1 and nodes[0] is tree.root

    def test_empty_leaves_skipped(self):
        # 2 points in one quadrant: other quadrants are empty leaves.
        pts = [Point(1, 1), Point(1.5, 1.5)]
        tree = Quadtree(pts, space=Rect(0, 8, 0, 8))
        for node in tree.truncated_nodes(10):
            assert tree.objects_under(node)

    def test_objects_under_root_is_everything(self):
        pts = _random_points(30, seed=7)
        tree = Quadtree(pts)
        assert sorted(tree.objects_under(tree.root)) == list(range(30))


class TestLeafCount:
    def test_leaf_count_positive(self):
        assert Quadtree(_random_points(64, seed=8)).leaf_count() >= 64
