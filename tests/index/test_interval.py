"""Tests for 1-D maximum interval stabbing."""

import random

import pytest

from repro.index.interval import max_stabbing


class TestMaxStabbing:
    def test_empty(self):
        assert max_stabbing([]) == (0.0, None)

    def test_single_interval(self):
        value, x = max_stabbing([(0.0, 2.0)])
        assert value == 1.0
        assert 0.0 < x < 2.0

    def test_weighted(self):
        value, x = max_stabbing([(0, 2), (1, 3)], weights=[1.0, 5.0])
        assert value == 6.0
        assert 1.0 < x < 2.0

    def test_disjoint_intervals_pick_heaviest(self):
        value, x = max_stabbing([(0, 1), (5, 6)], weights=[2.0, 3.0])
        assert value == 3.0
        assert 5.0 < x < 6.0

    def test_open_endpoints_do_not_stack(self):
        """(0,1) and (1,2) never share a stabbing point (open intervals)."""
        value, _ = max_stabbing([(0, 1), (1, 2)])
        assert value == 1.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            max_stabbing([(0, 1)], weights=[1.0, 2.0])

    def test_degenerate_interval_rejected(self):
        with pytest.raises(ValueError):
            max_stabbing([(1.0, 1.0)])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            max_stabbing([(0, 1)], weights=[-1.0])

    def test_returned_x_achieves_value(self):
        rng = random.Random(6)
        for _ in range(50):
            intervals, weights = [], []
            for _ in range(rng.randint(1, 20)):
                lo = rng.uniform(0, 10)
                intervals.append((lo, lo + rng.uniform(0.1, 4)))
                weights.append(rng.uniform(0, 3))
            value, x = max_stabbing(intervals, weights)
            stabbed = sum(
                w for (lo, hi), w in zip(intervals, weights) if lo < x < hi
            )
            assert stabbed == pytest.approx(value)

    def test_matches_bruteforce(self):
        rng = random.Random(7)
        for _ in range(50):
            intervals = []
            for _ in range(rng.randint(1, 15)):
                lo = rng.uniform(0, 10)
                intervals.append((lo, lo + rng.uniform(0.1, 5)))
            value, _ = max_stabbing(intervals)
            # Brute force: probe midpoints between all endpoint pairs.
            coords = sorted({c for iv in intervals for c in iv})
            best = 0
            for lo, hi in zip(coords, coords[1:]):
                mid = (lo + hi) / 2
                best = max(best, sum(1 for l, h in intervals if l < mid < h))
            assert value == best
