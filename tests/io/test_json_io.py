"""Tests for dataset JSON round-tripping."""

import json

import pytest

from repro.datasets.registry import brightkite_like, yelp_like
from repro.io.json_io import FORMAT_VERSION, load_dataset, save_dataset


class TestDiversityRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        original = yelp_like(n_objects=120, seed=2)
        path = tmp_path / "yelp.json"
        save_dataset(original, path)
        loaded = load_dataset(path)
        assert loaded.name == original.name
        assert loaded.points == original.points
        assert [set(t) for t in loaded.tag_sets] == [set(t) for t in original.tag_sets]
        assert loaded.space == original.space

    def test_loaded_dataset_solves_identically(self, tmp_path):
        from repro.core.slicebrs import SliceBRS

        original = yelp_like(n_objects=150, seed=3)
        path = tmp_path / "ds.json"
        save_dataset(original, path)
        loaded = load_dataset(path)
        a, b = original.query(10)
        s1 = SliceBRS().solve(original.points, original.score_function(), a, b)
        s2 = SliceBRS().solve(loaded.points, loaded.score_function(), a, b)
        assert s1.score == pytest.approx(s2.score)


class TestInfluenceRoundTrip:
    def test_roundtrip_preserves_structure(self, tmp_path):
        original = brightkite_like(n_objects=150, n_users=60, seed=4)
        path = tmp_path / "bk.json"
        save_dataset(original, path)
        loaded = load_dataset(path)
        assert loaded.points == original.points
        assert loaded.graph.n_users == original.graph.n_users
        assert loaded.graph.n_edges == original.graph.n_edges
        assert loaded.checkins.n_checkins == original.checkins.n_checkins
        for poi in range(0, 150, 17):
            assert loaded.checkins.users_of_poi(poi) == original.checkins.users_of_poi(poi)

    def test_roundtrip_preserves_probabilities(self, tmp_path):
        original = brightkite_like(n_objects=100, n_users=40, seed=5)
        path = tmp_path / "bk.json"
        save_dataset(original, path)
        loaded = load_dataset(path)
        for u in range(original.graph.n_users):
            assert sorted(loaded.graph.out_neighbors(u)) == pytest.approx(
                sorted(original.graph.out_neighbors(u))
            )


class TestErrorHandling:
    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "format_version": FORMAT_VERSION,
            "name": "x",
            "kind": "mystery",
            "space": [0, 1, 0, 1],
            "points": {"x": [0.5], "y": [0.5]},
        }))
        with pytest.raises(ValueError, match="unknown dataset kind"):
            load_dataset(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(json.dumps({"format_version": 999}))
        with pytest.raises(ValueError, match="format version"):
            load_dataset(path)

    def test_unserializable_type_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            save_dataset(object(), tmp_path / "x.json")


class TestCoordinateValidation:
    def _write(self, tmp_path, xs, ys):
        path = tmp_path / "corrupt.json"
        # json.dumps emits NaN/Infinity literals, which Python's loader
        # accepts — exactly the corruption this validation exists for.
        path.write_text(json.dumps({
            "format_version": FORMAT_VERSION,
            "name": "x",
            "kind": "diversity",
            "space": [0, 1, 0, 1],
            "points": {"x": xs, "y": ys},
            "tags": [["t"] for _ in xs],
        }))
        return path

    def test_nan_coordinate_rejected(self, tmp_path):
        from repro.runtime.errors import InvalidQueryError

        path = self._write(tmp_path, [0.5, float("nan")], [0.5, 0.5])
        with pytest.raises(InvalidQueryError, match="object 1.*non-finite"):
            load_dataset(path)

    def test_infinite_coordinate_rejected(self, tmp_path):
        from repro.runtime.errors import InvalidQueryError

        path = self._write(tmp_path, [0.5], [float("inf")])
        with pytest.raises(InvalidQueryError, match="non-finite"):
            load_dataset(path)

    def test_empty_dataset_rejected(self, tmp_path):
        from repro.runtime.errors import InvalidQueryError

        path = self._write(tmp_path, [], [])
        with pytest.raises(InvalidQueryError, match="no objects"):
            load_dataset(path)

    def test_validation_error_is_also_a_valueerror(self, tmp_path):
        # Callers that predate the taxonomy catch ValueError; keep working.
        path = self._write(tmp_path, [float("nan")], [0.0])
        with pytest.raises(ValueError):
            load_dataset(path)
