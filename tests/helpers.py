"""Random-instance builders shared across the test suite."""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.functions.coverage import CoverageFunction
from repro.functions.weighted_sum import SumFunction
from repro.geometry.point import Point


def random_instance(
    seed: int,
    max_objects: int = 40,
    alphabet: str = "abcdefgh",
) -> Tuple[List[Point], CoverageFunction, float, float]:
    """Build a random small diversity instance ``(points, f, a, b)``."""
    rng = random.Random(seed)
    n = rng.randint(1, max_objects)
    points = [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(n)]
    tags = [set(rng.sample(alphabet, rng.randint(1, 3))) for _ in range(n)]
    a = rng.uniform(0.5, 4.0)
    b = rng.uniform(0.5, 4.0)
    return points, CoverageFunction(tags), a, b


def random_sum_instance(
    seed: int, max_objects: int = 40
) -> Tuple[List[Point], SumFunction, float, float]:
    """Build a random small MaxRS instance ``(points, f, a, b)``."""
    rng = random.Random(seed)
    n = rng.randint(1, max_objects)
    points = [Point(rng.uniform(0, 10), rng.uniform(0, 10)) for _ in range(n)]
    weights = [rng.uniform(0.1, 2.0) for _ in range(n)]
    a = rng.uniform(0.5, 4.0)
    b = rng.uniform(0.5, 4.0)
    return points, SumFunction(n, weights), a, b
