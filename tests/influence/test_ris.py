"""Tests for reverse influence sampling and the influence function."""

import random

import pytest

from repro.functions.validate import check_submodular_monotone
from repro.influence.checkins import CheckinTable
from repro.influence.graph import SocialGraph
from repro.influence.ic_model import estimate_spread_mc
from repro.influence.ris import InfluenceFunction, RISEstimator, generate_rr_sets


def _random_graph(n_users=12, seed=0, density=0.25, max_p=0.4):
    rng = random.Random(seed)
    edges = [
        (i, j, rng.uniform(0, max_p))
        for i in range(n_users)
        for j in range(n_users)
        if i != j and rng.random() < density
    ]
    return SocialGraph(n_users, edges)


class TestGenerateRRSets:
    def test_count_and_nonempty(self):
        g = _random_graph()
        rr = generate_rr_sets(g, 50, random.Random(1))
        assert len(rr) == 50
        assert all(rr_set for rr_set in rr)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            generate_rr_sets(_random_graph(), 0)

    def test_no_edges_gives_singletons(self):
        g = SocialGraph(5, [])
        rr = generate_rr_sets(g, 30, random.Random(2))
        assert all(len(rr_set) == 1 for rr_set in rr)

    def test_certain_edges_reach_ancestors(self):
        g = SocialGraph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        rr = generate_rr_sets(g, 60, random.Random(3))
        for rr_set in rr:
            if 2 in rr_set:
                assert {0, 1, 2} <= rr_set  # 0 and 1 always reach 2


class TestRISEstimator:
    def test_rejects_empty_sample(self):
        with pytest.raises(ValueError):
            RISEstimator(3, [])

    def test_spread_of_empty_is_zero(self):
        est = RISEstimator(3, [frozenset({0}), frozenset({1})])
        assert est.spread([]) == 0.0

    def test_spread_counts_covered_sets(self):
        est = RISEstimator(4, [frozenset({0}), frozenset({1}), frozenset({0, 1})])
        # seeds {0} hit sets 0 and 2 -> 4 * 2/3.
        assert est.spread([0]) == pytest.approx(8 / 3)
        assert est.spread([0, 1]) == pytest.approx(4.0)

    def test_agrees_with_monte_carlo(self):
        """RIS and forward simulation estimate the same expectation."""
        g = _random_graph(n_users=15, seed=5)
        est = RISEstimator(15, generate_rr_sets(g, 8000, random.Random(6)))
        for seeds in ([0], [1, 2], [3, 4, 5]):
            mc = estimate_spread_mc(g, seeds, 3000, rng=random.Random(7))
            assert est.spread(seeds) == pytest.approx(mc, rel=0.15)


class TestInfluenceFunction:
    def _setup(self, seed=0):
        g = _random_graph(n_users=10, seed=seed)
        rng = random.Random(seed + 1)
        visits = [(rng.randrange(10), rng.randrange(6)) for _ in range(40)]
        checkins = CheckinTable(10, 6, visits)
        est = RISEstimator(10, generate_rr_sets(g, 500, random.Random(seed + 2)))
        return checkins, est

    def test_value_equals_spread_of_seed_users(self):
        checkins, est = self._setup()
        fn = InfluenceFunction(checkins, est)
        for pois in ([0], [0, 1], [2, 3, 4], list(range(6))):
            assert fn.value(pois) == pytest.approx(
                est.spread(checkins.seed_users(pois))
            )

    def test_is_submodular_monotone(self):
        checkins, est = self._setup(seed=9)
        fn = InfluenceFunction(checkins, est)
        check_submodular_monotone(fn, range(6), trials=200)

    def test_poi_without_visitors_scores_zero(self):
        g = SocialGraph(2, [])
        checkins = CheckinTable(2, 3, [(0, 0)])
        est = RISEstimator(2, generate_rr_sets(g, 100, random.Random(1)))
        fn = InfluenceFunction(checkins, est)
        assert fn.value([1]) == 0.0
        assert fn.value([2]) == 0.0

    def test_accessors(self):
        checkins, est = self._setup()
        fn = InfluenceFunction(checkins, est)
        assert fn.estimator is est
        assert fn.checkins is checkins
