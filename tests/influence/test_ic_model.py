"""Tests for the Independent Cascade simulator."""

import random

import pytest

from repro.influence.graph import SocialGraph
from repro.influence.ic_model import estimate_spread_mc, simulate_ic


class TestSimulateIC:
    def test_seeds_always_active(self):
        g = SocialGraph(3, [])
        assert simulate_ic(g, [0, 2]) == {0, 2}

    def test_certain_edge_always_propagates(self):
        g = SocialGraph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        assert simulate_ic(g, [0]) == {0, 1, 2}

    def test_impossible_edge_never_propagates(self):
        g = SocialGraph(2, [(0, 1, 0.0)])
        for _ in range(20):
            assert simulate_ic(g, [0]) == {0}

    def test_deterministic_with_seeded_rng(self):
        g = SocialGraph(
            6, [(i, j, 0.5) for i in range(6) for j in range(6) if i != j]
        )
        first = simulate_ic(g, [0], rng=random.Random(42))
        second = simulate_ic(g, [0], rng=random.Random(42))
        assert first == second

    def test_one_activation_chance_per_edge(self):
        """A node already active is never re-activated (cascade halts)."""
        g = SocialGraph(2, [(0, 1, 1.0), (1, 0, 1.0)])
        assert simulate_ic(g, [0]) == {0, 1}


class TestEstimateSpreadMC:
    def test_rejects_bad_simulation_count(self):
        g = SocialGraph(1, [])
        with pytest.raises(ValueError):
            estimate_spread_mc(g, [0], n_simulations=0)

    def test_isolated_seed_spread_is_one(self):
        g = SocialGraph(4, [])
        assert estimate_spread_mc(g, [0], 50) == 1.0

    def test_certain_chain_spread(self):
        g = SocialGraph(3, [(0, 1, 1.0), (1, 2, 1.0)])
        assert estimate_spread_mc(g, [0], 50) == 3.0

    def test_half_probability_edge_mean(self):
        """Spread of a single p=0.5 edge is 1.5 in expectation."""
        g = SocialGraph(2, [(0, 1, 0.5)])
        est = estimate_spread_mc(g, [0], 4000, rng=random.Random(7))
        assert est == pytest.approx(1.5, abs=0.05)

    def test_spread_monotone_in_seeds(self):
        rng = random.Random(3)
        edges = [
            (i, j, rng.uniform(0, 0.4))
            for i in range(10)
            for j in range(10)
            if i != j and rng.random() < 0.3
        ]
        g = SocialGraph(10, edges)
        small = estimate_spread_mc(g, [0], 500, rng=random.Random(1))
        large = estimate_spread_mc(g, [0, 1, 2], 500, rng=random.Random(1))
        assert large >= small
