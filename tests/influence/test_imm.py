"""Tests for greedy influence maximization (lazy greedy / CELF)."""

import random

import pytest

from repro.influence.graph import SocialGraph
from repro.influence.imm import greedy_seed_selection
from repro.influence.ris import RISEstimator, generate_rr_sets


def _estimator(n_users=20, seed=0, n_sets=600):
    rng = random.Random(seed)
    edges = [
        (i, j, rng.uniform(0, 0.4))
        for i in range(n_users)
        for j in range(n_users)
        if i != j and rng.random() < 0.25
    ]
    graph = SocialGraph(n_users, edges)
    return RISEstimator(n_users, generate_rr_sets(graph, n_sets, random.Random(seed + 1)))


class TestGreedySeedSelection:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            greedy_seed_selection(_estimator(), 0)

    def test_returns_k_distinct_seeds(self):
        seeds, _ = greedy_seed_selection(_estimator(), 5)
        assert len(seeds) == 5
        assert len(set(seeds)) == 5

    def test_spread_matches_estimator(self):
        est = _estimator(seed=2)
        seeds, spread = greedy_seed_selection(est, 4)
        assert spread == pytest.approx(est.spread(seeds))

    def test_spread_monotone_in_k(self):
        est = _estimator(seed=3)
        spreads = [greedy_seed_selection(est, k)[1] for k in (1, 3, 6, 10)]
        assert spreads == sorted(spreads)

    def test_first_seed_is_the_best_single_user(self):
        est = _estimator(seed=4)
        seeds, _ = greedy_seed_selection(est, 1)
        best_single = max(range(est.n_users), key=lambda u: est.spread([u]))
        assert est.spread(seeds) == pytest.approx(est.spread([best_single]))

    def test_matches_plain_greedy(self):
        """Lazy greedy must select the same value as naive greedy."""
        est = _estimator(n_users=12, seed=5, n_sets=300)

        covered = set()
        naive_value = 0
        chosen = []
        for _ in range(4):
            best_user, best_gain = None, -1
            for user in range(est.n_users):
                if user in chosen:
                    continue
                gain = sum(1 for r in est.rr_ids_of_user(user) if r not in covered)
                if gain > best_gain:
                    best_user, best_gain = user, gain
            chosen.append(best_user)
            covered.update(est.rr_ids_of_user(best_user))
        naive_value = est.scale * len(covered)

        _, lazy_value = greedy_seed_selection(est, 4)
        assert lazy_value == pytest.approx(naive_value)

    def test_unconstrained_beats_any_region(self):
        """Free seed choice upper-bounds the region-constrained optimum
        for the same seed count — the comparison the example draws."""
        from repro.influence.checkins import CheckinTable
        from repro.influence.ris import InfluenceFunction

        est = _estimator(n_users=15, seed=6)
        rng = random.Random(7)
        visits = [(rng.randrange(15), rng.randrange(8)) for _ in range(60)]
        checkins = CheckinTable(15, 8, visits)
        fn = InfluenceFunction(checkins, est)

        region_score = max(fn.value([poi]) for poi in range(8))
        biggest_seed_set = max(
            (len(checkins.users_of_poi(p)) for p in range(8)), default=0
        )
        _, free_score = greedy_seed_selection(est, max(1, biggest_seed_set))
        assert free_score >= region_score - 1e-9
