"""Tests for the social graph."""

import pytest

from repro.influence.graph import SocialGraph


class TestSocialGraph:
    def test_basic_adjacency(self):
        g = SocialGraph(3, [(0, 1, 0.5), (1, 2, 0.3)])
        assert g.n_users == 3
        assert g.n_edges == 2
        assert g.out_neighbors(0) == [(1, 0.5)]
        assert g.in_neighbors(2) == [(1, 0.3)]
        assert g.in_degree(1) == 1

    def test_rejects_zero_users(self):
        with pytest.raises(ValueError):
            SocialGraph(0, [])

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(ValueError):
            SocialGraph(2, [(0, 2, 0.5)])

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            SocialGraph(2, [(0, 1, 1.5)])
        with pytest.raises(ValueError):
            SocialGraph(2, [(0, 1, -0.1)])

    def test_duplicate_edges_keep_last(self):
        g = SocialGraph(2, [(0, 1, 0.2), (0, 1, 0.9)])
        assert g.n_edges == 1
        assert g.out_neighbors(0) == [(1, 0.9)]

    def test_probability_boundaries_allowed(self):
        g = SocialGraph(2, [(0, 1, 0.0), (1, 0, 1.0)])
        assert g.n_edges == 2

    def test_weighted_cascade(self):
        g = SocialGraph(3, [(0, 2, 0.9), (1, 2, 0.9)])
        wc = g.with_weighted_cascade()
        assert wc.in_neighbors(2) == [(0, 0.5), (1, 0.5)] or wc.in_neighbors(2) == [
            (1, 0.5),
            (0, 0.5),
        ]

    def test_isolated_users_have_no_neighbors(self):
        g = SocialGraph(5, [])
        assert g.out_neighbors(3) == []
        assert g.in_degree(3) == 0
