"""Tests for the check-in table."""

import pytest

from repro.influence.checkins import CheckinTable


class TestCheckinTable:
    def test_basic_lookups(self):
        table = CheckinTable(3, 2, [(0, 0), (0, 1), (1, 0), (0, 0)])
        assert table.n_checkins == 4
        assert table.users_of_poi(0) == {0, 1}
        assert table.pois_of_user(0) == {0, 1}
        assert table.users_of_poi(1) == {0}

    def test_out_of_range_user(self):
        with pytest.raises(ValueError):
            CheckinTable(1, 1, [(1, 0)])

    def test_out_of_range_poi(self):
        with pytest.raises(ValueError):
            CheckinTable(1, 1, [(0, 1)])

    def test_seed_users_union(self):
        table = CheckinTable(4, 3, [(0, 0), (1, 1), (2, 1), (3, 2)])
        assert table.seed_users([0, 1]) == {0, 1, 2}
        assert table.seed_users([]) == set()

    def test_unknown_poi_has_no_users(self):
        table = CheckinTable(2, 5, [(0, 0)])
        assert table.users_of_poi(4) == frozenset()

    def test_checkins_of_user(self):
        table = CheckinTable(2, 2, [(0, 0), (0, 0), (0, 1), (1, 1)])
        assert table.checkins_of_user(0) == 3
        assert table.checkins_of_user(1) == 1


class TestCheckinRatioProbabilities:
    def test_shared_visits_ratio(self):
        # v checks in twice at poi 0 and once at poi 1; u visits poi 0 only.
        table = CheckinTable(2, 2, [(1, 0), (1, 0), (1, 1), (0, 0)])
        edges = table.checkin_ratio_probabilities([(0, 1)])
        assert edges == [(0, 1, pytest.approx(2 / 3))]

    def test_no_shared_pois_zero_probability(self):
        table = CheckinTable(2, 2, [(0, 0), (1, 1)])
        edges = table.checkin_ratio_probabilities([(0, 1)])
        assert edges == [(0, 1, 0.0)]

    def test_target_without_checkins_zero(self):
        table = CheckinTable(2, 1, [(0, 0)])
        edges = table.checkin_ratio_probabilities([(0, 1)])
        assert edges == [(0, 1, 0.0)]

    def test_probabilities_in_unit_interval(self):
        import random

        rng = random.Random(1)
        visits = [(rng.randrange(10), rng.randrange(6)) for _ in range(200)]
        table = CheckinTable(10, 6, visits)
        friendships = [(u, v) for u in range(10) for v in range(10) if u != v]
        for _, _, p in table.checkin_ratio_probabilities(friendships):
            assert 0.0 <= p <= 1.0

    def test_build_graph(self):
        table = CheckinTable(2, 1, [(0, 0), (1, 0)])
        graph = table.build_graph([(0, 1), (1, 0)])
        assert graph.n_users == 2
        assert graph.n_edges == 2
