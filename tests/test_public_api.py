"""Public-API hygiene: exports resolve, are documented, and stay stable."""

import importlib
import inspect

import pytest

import repro

_SUBPACKAGES = [
    "repro.core",
    "repro.cover",
    "repro.datasets",
    "repro.functions",
    "repro.geometry",
    "repro.index",
    "repro.influence",
    "repro.io",
    "repro.network",
    "repro.bench",
    "repro.runtime",
    "repro.obs",
    "repro.serve",
]


class TestExports:
    def test_root_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize("module_name", _SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert getattr(module, name, None) is not None, f"{module_name}.{name}"

    @pytest.mark.parametrize("module_name", _SUBPACKAGES)
    def test_subpackage_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 40

    def test_public_classes_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
                    continue
                if inspect.isclass(obj):
                    for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
                        if meth_name.startswith("_"):
                            continue
                        doc = inspect.getdoc(meth)  # walks the MRO
                        if not (doc and doc.strip()):
                            undocumented.append(f"{name}.{meth_name}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3 and all(p.isdigit() for p in parts)

    def test_quickstart_docstring_example_runs(self):
        """The package docstring's example must actually work."""
        from repro import CoverageFunction, Point, best_region

        points = [Point(0.0, 0.0), Point(0.5, 0.2), Point(5.0, 5.0)]
        tags = [{"cafe"}, {"museum"}, {"cafe"}]
        result = best_region(points, CoverageFunction(tags), a=2.0, b=2.0)
        assert result.score == 2.0
