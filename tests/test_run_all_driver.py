"""Tests for the run_all experiment driver (stubbed experiments)."""

import importlib.util
import pathlib
import sys

import pytest

from repro.bench.harness import Table


@pytest.fixture()
def run_all():
    """Import benchmarks/run_all.py as a module (it is not a package)."""
    path = pathlib.Path(__file__).resolve().parents[1] / "benchmarks" / "run_all.py"
    spec = importlib.util.spec_from_file_location("run_all_driver", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _stub_tables():
    return [Table("Table S", "stub table", ("dataset", "#DR", "#MR", "r"),
                  [("x", 1000, 3, "0.3%")])]


class TestRunAllDriver:
    def test_list_mode(self, run_all, capsys):
        assert run_all.main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "table5" in out and "fig16" in out

    def test_unknown_experiment(self, run_all, capsys):
        assert run_all.main(["--only", "bogus"]) == 2

    def test_runs_and_writes_output(self, run_all, capsys, tmp_path, monkeypatch):
        monkeypatch.setattr(run_all, "ALL_EXPERIMENTS", {"stub": _stub_tables})
        monkeypatch.setattr(run_all, "SHAPE_CHECKS", {})
        assert run_all.main(["--only", "stub", "--out", str(tmp_path)]) == 0
        assert (tmp_path / "tables.txt").exists()
        assert "Table S" in capsys.readouterr().out

    def test_check_mode_passes(self, run_all, capsys, monkeypatch):
        monkeypatch.setattr(run_all, "ALL_EXPERIMENTS", {"stub": _stub_tables})
        monkeypatch.setattr(
            run_all, "SHAPE_CHECKS", {"stub": lambda tables: []}
        )
        assert run_all.main(["--only", "stub", "--check"]) == 0
        assert "all shape checks passed" in capsys.readouterr().out

    def test_check_mode_fails_loudly(self, run_all, capsys, monkeypatch):
        monkeypatch.setattr(run_all, "ALL_EXPERIMENTS", {"stub": _stub_tables})
        monkeypatch.setattr(
            run_all, "SHAPE_CHECKS", {"stub": lambda tables: ["it broke"]}
        )
        assert run_all.main(["--only", "stub", "--check"]) == 1
        assert "it broke" in capsys.readouterr().err


class TestDriverHardening:
    def test_crashing_experiment_does_not_wedge_the_run(
        self, run_all, capsys, monkeypatch
    ):
        def crash():
            raise RuntimeError("experiment exploded")

        monkeypatch.setattr(
            run_all, "ALL_EXPERIMENTS", {"bad": crash, "good": _stub_tables}
        )
        monkeypatch.setattr(run_all, "SHAPE_CHECKS", {})
        assert run_all.main(["--only", "bad", "good"]) == 0
        captured = capsys.readouterr()
        assert "experiment exploded" in captured.err
        assert "Table S" in captured.out  # the good experiment still ran

    def test_json_status_rows(self, run_all, capsys, monkeypatch, tmp_path):
        import json

        def crash():
            raise RuntimeError("boom")

        monkeypatch.setattr(
            run_all, "ALL_EXPERIMENTS", {"bad": crash, "good": _stub_tables}
        )
        monkeypatch.setattr(run_all, "SHAPE_CHECKS", {})
        out = tmp_path / "status.json"
        assert run_all.main(
            ["--only", "bad", "good", "--json", str(out)]
        ) == 0
        rows = json.loads(out.read_text())
        by_key = {row["experiment"]: row for row in rows}
        assert by_key["bad"]["status"] == "error"
        assert "boom" in by_key["bad"]["error"]
        assert by_key["good"]["status"] == "ok"
        assert by_key["good"]["seconds"] >= 0.0

    def test_json_rows_embed_metric_snapshots(
        self, run_all, capsys, monkeypatch, tmp_path
    ):
        import json

        from repro.core.slicebrs import SliceBRS
        from repro.obs.bench import make_instance

        def solve_something():
            points, f, a, b = make_instance(n_objects=40, seed=1)
            SliceBRS().solve(points, f, a, b)
            return _stub_tables()

        monkeypatch.setattr(
            run_all, "ALL_EXPERIMENTS", {"solver": solve_something}
        )
        monkeypatch.setattr(run_all, "SHAPE_CHECKS", {})
        out = tmp_path / "status.json"
        assert run_all.main(["--only", "solver", "--json", str(out)]) == 0
        rows = json.loads(out.read_text())
        metrics = rows[0]["metrics"]
        assert metrics["brs_slicebrs_solves_total"]["value"] == 1
        assert metrics["brs_candidates_total"]["value"] >= 1
        assert metrics["brs_slicebrs_solve_seconds"]["count"] == 1

    def test_metrics_isolated_per_experiment(
        self, run_all, capsys, monkeypatch, tmp_path
    ):
        import json

        from repro.core.slicebrs import SliceBRS
        from repro.obs.bench import make_instance

        def one_solve():
            points, f, a, b = make_instance(n_objects=40, seed=2)
            SliceBRS().solve(points, f, a, b)
            return _stub_tables()

        monkeypatch.setattr(
            run_all, "ALL_EXPERIMENTS", {"first": one_solve, "second": one_solve}
        )
        monkeypatch.setattr(run_all, "SHAPE_CHECKS", {})
        out = tmp_path / "status.json"
        assert run_all.main(
            ["--only", "first", "second", "--json", str(out)]
        ) == 0
        rows = json.loads(out.read_text())
        experiment_rows = [
            r for r in rows
            if r["experiment"] not in ("lint", "interprocedural-lint")
        ]
        assert len(experiment_rows) == 2
        for row in experiment_rows:
            # A fresh registry per run: counts do not bleed across rows.
            assert row["metrics"]["brs_slicebrs_solves_total"]["value"] == 1

    def test_json_includes_lint_timing_row(
        self, run_all, capsys, monkeypatch, tmp_path
    ):
        import json

        monkeypatch.setattr(
            run_all, "ALL_EXPERIMENTS", {"stub": _stub_tables}
        )
        monkeypatch.setattr(run_all, "SHAPE_CHECKS", {})
        out = tmp_path / "status.json"
        assert run_all.main(["--only", "stub", "--json", str(out)]) == 0
        rows = json.loads(out.read_text())
        lint = rows[-2]
        assert lint["experiment"] == "lint"
        assert lint["status"] == "ok"
        assert lint["error"] is None
        assert lint["seconds"] >= 0
        assert lint["metrics"]["files_scanned"] > 100
        assert lint["metrics"]["findings"] == 0
        inter = rows[-1]
        assert inter["experiment"] == "interprocedural-lint"
        assert inter["status"] == "ok"
        assert inter["error"] is None
        assert inter["metrics"]["functions"] > 500
        assert inter["metrics"]["findings"] == 0

    def test_timeout_flag_installs_budget(self, run_all, monkeypatch):
        from repro.runtime.budget import ambient_budget

        seen = {}

        def probe():
            seen["budget"] = ambient_budget()
            return _stub_tables()

        monkeypatch.setattr(run_all, "ALL_EXPERIMENTS", {"probe": probe})
        monkeypatch.setattr(run_all, "SHAPE_CHECKS", {})
        assert run_all.main(["--only", "probe", "--timeout", "30"]) == 0
        assert seen["budget"] is not None
        assert seen["budget"].deadline == 30.0
