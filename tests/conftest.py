"""Shared test fixtures."""

from __future__ import annotations

from typing import List

import pytest

from repro.geometry.point import Point
from tests.helpers import random_instance


@pytest.fixture(scope="session")
def small_diversity_instance():
    """A fixed small diversity instance reused across tests."""
    return random_instance(seed=1234)


@pytest.fixture(scope="session")
def grid_points() -> List[Point]:
    """A 5x5 integer lattice, jittered off exact ties."""
    return [
        Point(x + 0.01 * y, y + 0.013 * x) for x in range(5) for y in range(5)
    ]
