#!/usr/bin/env python
"""Most influential region search (Example 1 of the paper).

A company wants to place a signage so that the people who see it — everyone
checking in nearby — trigger the widest word-of-mouth cascade through the
social network.  This script builds the Brightkite analog (POIs, check-ins,
a friendship graph with check-in-derived propagation probabilities), turns
influence into a submodular function via reverse influence sampling, solves
the BRS problem, and cross-checks the winning region's spread with a
forward Monte-Carlo simulation of the Independent Cascade model.

Run::

    python examples/most_influential_region.py
"""

import random

from repro import CoverBRS, SliceBRS, oe_maxrs
from repro.datasets import brightkite_like
from repro.influence import estimate_spread_mc


def main() -> None:
    dataset = brightkite_like()
    influence = dataset.score_function(n_rr_sets=2000, seed=0)
    print(
        f"dataset: {dataset.name} — {len(dataset.points)} POIs, "
        f"{dataset.graph.n_users} users, {dataset.checkins.n_checkins} "
        f"check-ins, {dataset.graph.n_edges} directed friendships"
    )

    a, b = dataset.query(10)
    print(f"query rectangle: {a:.0f} x {b:.0f} (10q)\n")

    exact = SliceBRS().solve(dataset.points, influence, a, b)
    cover = CoverBRS(c=1 / 3).solve(
        dataset.points, influence, a, b, quadtree=dataset.quadtree()
    )
    crowded = oe_maxrs(dataset.points, a, b)

    for label, result in (("SliceBRS (exact)", exact), ("CoverBRS4", cover)):
        seeds = dataset.checkins.seed_users(result.object_ids)
        print(
            f"{label:18s} center=({result.point.x:6.0f},{result.point.y:6.0f}) "
            f"POIs={len(result.object_ids):4d} seeds={len(seeds):4d} "
            f"estimated spread={result.score:6.1f}"
        )
    crowded_score = influence.value(crowded.object_ids)
    print(
        f"{'OE (most POIs)':18s} center=({crowded.point.x:6.0f},"
        f"{crowded.point.y:6.0f}) POIs={len(crowded.object_ids):4d} "
        f"seeds={len(dataset.checkins.seed_users(crowded.object_ids)):4d} "
        f"estimated spread={crowded_score:6.1f}"
    )

    # Validate the RIS estimate of the winning region with forward IC runs.
    seeds = dataset.checkins.seed_users(exact.object_ids)
    mc = estimate_spread_mc(
        dataset.graph, seeds, n_simulations=300, rng=random.Random(1)
    )
    print(
        f"\nforward IC Monte-Carlo check of the winner: {mc:.1f} "
        f"(RIS estimate {exact.score:.1f})"
    )
    print(
        "The crowded region reaches fewer people: its visitors are many "
        "but\npoorly connected — influence maximization is not density "
        "maximization."
    )


if __name__ == "__main__":
    main()
