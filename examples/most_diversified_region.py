#!/usr/bin/env python
"""Most diversified region search on a city-scale synthetic dataset.

Example 2 of the paper: George wants the one neighbourhood with the most
different kinds of attractions, for a window size he chooses.  This script
builds the Yelp analog (a tag-monoculture downtown plus diverse districts),
runs the exact and approximate solvers across a few window sizes, and shows
the exploratory-refinement loop the paper motivates: re-running with a
tweaked rectangle is cheap because the dataset index persists.

Run::

    python examples/most_diversified_region.py
"""

import time

from repro import CoverBRS, SliceBRS, oe_maxrs
from repro.datasets import yelp_like


def main() -> None:
    dataset = yelp_like()
    diversity = dataset.score_function()
    print(f"dataset: {dataset.name}, {len(dataset.points)} POIs")

    print(f"\n{'k':>3} {'a x b':>16} {'exact':>6} {'cover4':>7} "
          f"{'maxrs':>6} {'t_exact':>8} {'t_cover':>8}")
    for k in (1, 5, 10, 20):
        a, b = dataset.query(k)

        start = time.perf_counter()
        exact = SliceBRS().solve(dataset.points, diversity, a, b)
        t_exact = time.perf_counter() - start

        start = time.perf_counter()
        cover = CoverBRS(c=1 / 3).solve(
            dataset.points, diversity, a, b, quadtree=dataset.quadtree()
        )
        t_cover = time.perf_counter() - start

        crowded = oe_maxrs(dataset.points, a, b)
        crowded_diversity = diversity.value(crowded.object_ids)

        print(
            f"{k:>3} {a:>7.0f} x {b:>6.0f} {exact.score:>6.0f} "
            f"{cover.score:>7.0f} {crowded_diversity:>6.0f} "
            f"{t_exact:>7.2f}s {t_cover:>7.2f}s"
        )

    a, b = dataset.query(10)
    exact = SliceBRS().solve(dataset.points, diversity, a, b)
    print(
        f"\nAt 10q the best {a:.0f} x {b:.0f} window is centered at "
        f"({exact.point.x:.0f}, {exact.point.y:.0f}) with "
        f"{exact.score:.0f} distinct tags over {len(exact.object_ids)} POIs."
    )
    print(
        "Note how the most *crowded* window (MaxRS column) carries far "
        "fewer\ndistinct tags — density and diversity part ways on this data."
    )


if __name__ == "__main__":
    main()
