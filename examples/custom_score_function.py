#!/usr/bin/env python
"""Plugging a custom submodular function into the solvers.

The paper's framework accepts *any* submodular monotone score.  This
walk-through builds a facility-location objective — "find the region whose
venues best serve a fixed set of visitor profiles, each visitor enjoying
only their single best match" — validates the submodularity contract, and
runs both solvers on it.

Run::

    python examples/custom_score_function.py
"""

import math
import random

from repro import CoverBRS, SliceBRS, check_submodular_monotone
from repro.datasets import yelp_like
from repro.functions import FacilityLocationFunction


def build_visitor_utilities(dataset, n_profiles: int, seed: int = 0):
    """Synthesize visitor-profile utilities from the dataset's tags.

    Each profile likes a random bundle of tags; a venue's utility to a
    profile is the (damped) count of liked tags it carries.
    """
    rng = random.Random(seed)
    vocabulary = sorted({t for tags in dataset.tag_sets for t in tags})
    utilities = []
    for _ in range(n_profiles):
        liked = set(rng.sample(vocabulary, k=min(25, len(vocabulary))))
        row = [
            math.sqrt(len(liked & tags)) for tags in dataset.tag_sets
        ]
        utilities.append(row)
    return utilities


def main() -> None:
    dataset = yelp_like()
    utilities = build_visitor_utilities(dataset, n_profiles=8, seed=3)
    fn = FacilityLocationFunction(utilities)

    # Always spot-check a hand-rolled function before trusting results.
    check_submodular_monotone(fn, range(0, len(dataset.points), 97))
    print("submodular-monotone spot-check passed")

    a, b = dataset.query(10)
    exact = SliceBRS().solve(dataset.points, fn, a, b)
    approx = CoverBRS(c=1 / 3).solve(
        dataset.points, fn, a, b, quadtree=dataset.quadtree()
    )

    print(f"\nquery {a:.0f} x {b:.0f} over {len(dataset.points)} venues, "
          f"8 visitor profiles")
    print(f"SliceBRS : score={exact.score:.2f} center="
          f"({exact.point.x:.0f},{exact.point.y:.0f}) "
          f"venues={len(exact.object_ids)}")
    print(f"CoverBRS : score={approx.score:.2f} center="
          f"({approx.point.x:.0f},{approx.point.y:.0f}) "
          f"(guaranteed >= {0.25 * exact.score:.2f})")

    per_profile = [
        max(utilities[i][o] for o in exact.object_ids)
        for i in range(len(utilities))
    ]
    print("\nbest-match utility per visitor profile in the chosen region:")
    print("  " + "  ".join(f"{u:.2f}" for u in per_profile))
    print(
        "\nEvery profile finds something: facility location rewards regions "
        "that\nserve everyone, not regions that pile up lookalike venues."
    )


if __name__ == "__main__":
    main()
