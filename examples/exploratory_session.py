#!/usr/bin/env python
"""The exploratory refine-and-rerun loop, with a terminal map.

Section 1 of the paper frames BRS as interactive: search, look at the
result, grow or shrink the window, repeat.  ExplorationSession wraps that
loop — fast approximate answers while browsing, an exact confirmation at
the end — and the ASCII map shows where each answer landed.

Run::

    python examples/exploratory_session.py
"""

from repro.core.session import ExplorationSession
from repro.datasets import yelp_like
from repro.viz import render_result


def main() -> None:
    dataset = yelp_like()
    session = ExplorationSession(dataset.points, dataset.score_function())

    a, b = dataset.query(5)
    print(f"step 1: explore a {a:.0f} x {b:.0f} window (approximate)\n")
    result = session.explore(a, b)
    print(render_result(dataset.points, result, width=68, height=20,
                        space=dataset.space))

    print("\nstep 2: too small — double the height, then the width\n")
    session.refine(scale_a=2.0)
    result = session.refine(scale_b=2.0)
    print(render_result(dataset.points, result, width=68, height=20,
                        space=dataset.space))

    print("\nstep 3: happy with the size — confirm exactly\n")
    confirmed = session.confirm()
    print(render_result(dataset.points, confirmed, width=68, height=20,
                        space=dataset.space))

    print("\nsession history:")
    for i, record in enumerate(session.history, 1):
        print(
            f"  {i}. {record.method:5s} {record.a:7.0f} x {record.b:7.0f}"
            f" -> score {record.result.score:.0f}"
        )
    best = session.best_so_far()
    print(
        f"\nbest of session: score {best.result.score:.0f} with the "
        f"{best.a:.0f} x {best.b:.0f} window ({best.method})"
    )
    contents = session.inspect(best.result)
    print(f"the region holds {len(contents)} POIs; first three: "
          + ", ".join(f"#{obj_id}@({p.x:.0f},{p.y:.0f})" for obj_id, p in contents[:3]))


if __name__ == "__main__":
    main()
