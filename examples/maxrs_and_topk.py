#!/usr/bin/env python
"""MaxRS as a special case, plus the top-k extension.

Two shorter tours of the API:

1. MaxRS (Appendix C.2): the SUM-specialized SliceBRS adaptation against
   the classic OE sweep — identical optima, the adaptation usually faster.
2. Top-k regions (the paper's stated future work): the k best
   object-disjoint regions, e.g. to shortlist several candidate
   neighbourhoods instead of one.

Run::

    python examples/maxrs_and_topk.py
"""

import time

from repro import SumFunction, oe_maxrs, slicebrs_maxrs, topk_regions
from repro.datasets import gowalla_like


def main() -> None:
    dataset = gowalla_like()
    a, b = dataset.query(10)
    print(f"dataset: {dataset.name}, {len(dataset.points)} POIs, query {a:.0f} x {b:.0f}")

    # --- 1. MaxRS two ways -------------------------------------------------
    start = time.perf_counter()
    adapted = slicebrs_maxrs(dataset.points, a, b)
    t_adapted = time.perf_counter() - start

    start = time.perf_counter()
    oe = oe_maxrs(dataset.points, a, b)
    t_oe = time.perf_counter() - start

    assert adapted.score == oe.score, "exact solvers must agree"
    print(
        f"\nMaxRS optimum: {oe.score:.0f} objects "
        f"(adapted SliceBRS {t_adapted:.2f}s vs OE {t_oe:.2f}s — "
        f"{t_adapted / t_oe:.0%} of OE's time)"
    )

    # --- 2. Top-k diverse-by-construction regions --------------------------
    fn = SumFunction(len(dataset.points))
    print("\ntop-5 object-disjoint regions by object count:")
    for rank, region in enumerate(topk_regions(dataset.points, fn, a, b, k=5), 1):
        print(
            f"  #{rank}: center=({region.point.x:6.0f},{region.point.y:6.0f}) "
            f"objects={len(region.object_ids):4d}"
        )
    print(
        "\nEach region is optimal for the objects the better-ranked regions "
        "left\nbehind, so the list reads as 'the 5 best distinct hotspots'."
    )


if __name__ == "__main__":
    main()
