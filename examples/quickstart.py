#!/usr/bin/env python
"""Quickstart: find the best region for a handful of tagged places.

This is the paper's Figure 1 scenario: four restaurants cluster tightly,
while three different venues (restaurant + mall + cinema) sit together
elsewhere.  MaxRS (count the objects) picks the restaurant row; best region
search with the diversity function picks the mixed block.

Run::

    python examples/quickstart.py
"""

from repro import CoverageFunction, Point, best_region, oe_maxrs


def main() -> None:
    # Seven venues: a restaurant row around (0, 0) and a mixed block at (5, 5).
    points = [
        Point(0.00, 0.00),  # restaurant
        Point(0.20, 0.10),  # restaurant
        Point(0.10, 0.30),  # restaurant
        Point(0.30, 0.20),  # restaurant
        Point(5.00, 5.00),  # restaurant
        Point(5.20, 5.10),  # mall
        Point(5.10, 5.30),  # cinema
    ]
    tags = [
        {"restaurant"},
        {"restaurant"},
        {"restaurant"},
        {"restaurant"},
        {"restaurant"},
        {"mall"},
        {"cinema"},
    ]

    diversity = CoverageFunction(tags)

    # How many *distinct kinds* of venue can a 1 x 1 window capture?
    result = best_region(points, diversity, a=1.0, b=1.0)
    print("Best region search (diversity):")
    print(f"  center  = ({result.point.x:.2f}, {result.point.y:.2f})")
    print(f"  score   = {result.score:.0f} distinct tags")
    print(f"  objects = {sorted(result.object_ids)}")

    # The MaxRS answer maximizes the *count* instead — a different region.
    maxrs = oe_maxrs(points, a=1.0, b=1.0)
    print("\nMaxRS (object count):")
    print(f"  center  = ({maxrs.point.x:.2f}, {maxrs.point.y:.2f})")
    print(f"  count   = {maxrs.score:.0f} objects")
    print(f"  diversity of that region = {diversity.value(maxrs.object_ids):.0f}")

    print(
        "\nThe crowded restaurant row wins on count but offers one kind of "
        "venue;\nthe mixed block wins on diversity — that is the BRS problem."
    )


if __name__ == "__main__":
    main()
