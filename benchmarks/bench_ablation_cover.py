"""A2: c-cover selection ablation — quadtree heuristic vs greedy set cover.

Section 5.3 rejects the greedy baseline on complexity grounds (O(n^2 log n)
vs O(n)) while accepting a possibly larger cover.  This ablation measures
both sides of that trade on the real analogs.
"""

import time

import pytest

from repro.cover.greedy_cover import greedy_cover
from repro.cover.quadtree_cover import select_cover


@pytest.mark.parametrize("selector", ["quadtree", "greedy"])
@pytest.mark.parametrize("dataset", ["brightkite", "yelp"])
def test_ablation_cover_selection_runtime(benchmark, request, dataset, selector):
    ds, _ = request.getfixturevalue(dataset)
    a, b = ds.query(10)
    if selector == "quadtree":
        tree = ds.quadtree()
        run = lambda: select_cover(ds.points, 1 / 3, a, b, quadtree=tree)  # noqa: E731
    else:
        run = lambda: greedy_cover(ds.points, 1 / 3, a, b)  # noqa: E731
    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.parametrize("dataset", ["brightkite", "yelp"])
def test_ablation_cover_tradeoff(request, dataset):
    """Quadtree must be much faster; greedy may be (somewhat) smaller."""
    ds, _ = request.getfixturevalue(dataset)
    a, b = ds.query(10)

    start = time.perf_counter()
    quad = select_cover(ds.points, 1 / 3, a, b, quadtree=ds.quadtree())
    t_quad = time.perf_counter() - start

    start = time.perf_counter()
    greedy = greedy_cover(ds.points, 1 / 3, a, b)
    t_greedy = time.perf_counter() - start

    assert quad.covers(ds.points, a, b)
    assert greedy.covers(ds.points, a, b)
    assert greedy.size <= quad.size          # greedy optimizes size directly
    assert t_quad < t_greedy                 # ...and pays for it in time
