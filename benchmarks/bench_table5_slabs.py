"""E6 (Table 5): maximal-slab pruning effectiveness at 10q."""

import pytest

from repro.core.slicebrs import SliceBRS


def _full_census_run(bundle):
    ds, fn = bundle
    a, b = ds.query(10)
    return SliceBRS(prune_slices=False).solve(ds.points, fn, a, b)


@pytest.mark.parametrize("dataset", ["brightkite", "gowalla", "yelp", "meetup"])
def test_table5_census_runtime(benchmark, request, dataset):
    bundle = request.getfixturevalue(dataset)
    result = benchmark.pedantic(
        lambda: _full_census_run(bundle), rounds=1, iterations=1
    )
    s = result.stats
    # Only a small part of the maximal slabs is ever searched.
    assert s.n_slabs_searched < 0.5 * s.n_slabs
    assert s.n_slabs_searched >= 1


def test_table5_meetup_prunes_worst(all_datasets):
    """Section 6.3: shared tags make Meetup's bounds loose, so its
    processed fraction is the highest of the four datasets."""
    fractions = {}
    for name, bundle in all_datasets.items():
        s = _full_census_run(bundle).stats
        fractions[name] = s.n_slabs_searched / max(1, s.n_slabs)
    assert max(fractions, key=fractions.get) == "meetup_like"
