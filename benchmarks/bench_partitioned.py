"""Partitioned/parallel solver benchmark (the external-memory lineage)."""

import pytest

from repro.core.partitioned import partitioned_best_region
from repro.core.slicebrs import SliceBRS


@pytest.mark.parametrize("n_parts", [1, 2, 4, 8])
def test_partitioned_runtime(benchmark, gowalla, n_parts):
    ds, fn = gowalla
    a, b = ds.query(10)
    benchmark.pedantic(
        lambda: partitioned_best_region(ds.points, fn, a, b, n_parts=n_parts),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("workers", [2, 4])
def test_partitioned_parallel_runtime(benchmark, gowalla, workers):
    ds, fn = gowalla
    a, b = ds.query(10)
    benchmark.pedantic(
        lambda: partitioned_best_region(
            ds.points, fn, a, b, n_parts=workers * 2, workers=workers
        ),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("dataset", ["gowalla", "yelp"])
def test_partitioned_matches_monolithic(request, dataset):
    ds, fn = request.getfixturevalue(dataset)
    a, b = ds.query(10)
    whole = SliceBRS().solve(ds.points, fn, a, b)
    split = partitioned_best_region(ds.points, fn, a, b, n_parts=6)
    assert split.score == pytest.approx(whole.score)
