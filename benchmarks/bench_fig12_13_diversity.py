"""E3+E4 (Figures 12 and 13): most diversified region — quality and runtime."""

import pytest

from repro.core.coverbrs import CoverBRS
from repro.core.maxrs import oe_maxrs
from repro.core.slicebrs import SliceBRS

K_VALUES = (1, 5, 10, 15, 20)


def _solve_case(bundle, k, algo):
    ds, fn = bundle
    a, b = ds.query(k)
    if algo == "slice":
        return lambda: SliceBRS().solve(ds.points, fn, a, b)
    if algo == "cover4":
        tree = ds.quadtree()
        return lambda: CoverBRS(c=1 / 3).solve(ds.points, fn, a, b, quadtree=tree)
    if algo == "cover9":
        tree = ds.quadtree()
        return lambda: CoverBRS(c=1 / 2).solve(ds.points, fn, a, b, quadtree=tree)
    return lambda: oe_maxrs(ds.points, a, b)


@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.parametrize("algo", ["slice", "cover4", "cover9", "oe"])
@pytest.mark.parametrize("dataset", ["yelp", "meetup"])
def test_fig13_runtime(benchmark, request, dataset, algo, k):
    bundle = request.getfixturevalue(dataset)
    benchmark.pedantic(_solve_case(bundle, k, algo), rounds=2, iterations=1)


def test_fig12_quality_shape_yelp(yelp):
    """Figure 12 + Figure 1's motivation: density is not diversity."""
    ds, fn = yelp
    a, b = ds.query(10)
    exact = SliceBRS().solve(ds.points, fn, a, b)
    c4 = CoverBRS(c=1 / 3).solve(ds.points, fn, a, b, quadtree=ds.quadtree())
    oe_quality = fn.value(oe_maxrs(ds.points, a, b).object_ids)
    assert exact.score >= c4.score >= 0.25 * exact.score - 1e-9
    # On yelp_like the crowded downtown is a tag monoculture: OE falls far
    # behind (the paper's Figure 1 scenario).
    assert oe_quality < 0.5 * exact.score


def test_fig12_quality_shape_meetup(meetup):
    ds, fn = meetup
    a, b = ds.query(10)
    exact = SliceBRS().solve(ds.points, fn, a, b)
    c9 = CoverBRS(c=1 / 2).solve(ds.points, fn, a, b, quadtree=ds.quadtree())
    oe_quality = fn.value(oe_maxrs(ds.points, a, b).object_ids)
    assert exact.score >= c9.score >= exact.score / 9.0 - 1e-9
    assert oe_quality <= exact.score
