"""E7 (Figure 14): usefulness of cutting the space into slices."""

import time

import pytest

from repro.core.slicebrs import SliceBRS

K_VALUES = (1, 5, 10, 15)


@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.parametrize("mode", ["sliced", "noslice"])
def test_fig14_runtime(benchmark, brightkite, mode, k):
    ds, fn = brightkite
    a, b = ds.query(k)
    solver = SliceBRS() if mode == "sliced" else SliceBRS(slicing=False)
    benchmark.pedantic(
        lambda: solver.solve(ds.points, fn, a, b), rounds=1, iterations=1
    )


def test_fig14_slicing_wins(brightkite):
    """The sliced solver must be decisively faster at non-trivial sizes."""
    ds, fn = brightkite
    a, b = ds.query(10)
    start = time.perf_counter()
    sliced_score = SliceBRS().solve(ds.points, fn, a, b).score
    t_sliced = time.perf_counter() - start
    start = time.perf_counter()
    noslice_score = SliceBRS(slicing=False).solve(ds.points, fn, a, b).score
    t_noslice = time.perf_counter() - start
    assert sliced_score == pytest.approx(noslice_score)
    assert t_noslice > 2 * t_sliced
