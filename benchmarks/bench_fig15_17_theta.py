"""E9 (Figures 15 and 17): effect of the slice width theta."""

import pytest

from repro.core.coverbrs import CoverBRS
from repro.core.slicebrs import SliceBRS

THETAS = (1, 2, 3, 4, 5)


@pytest.mark.parametrize("theta", THETAS)
@pytest.mark.parametrize("dataset", ["brightkite", "gowalla", "yelp", "meetup"])
def test_theta_slicebrs_runtime(benchmark, request, dataset, theta):
    ds, fn = request.getfixturevalue(dataset)
    a, b = ds.query(10)
    benchmark.pedantic(
        lambda: SliceBRS(theta=theta).solve(ds.points, fn, a, b),
        rounds=1,
        iterations=1,
    )


@pytest.mark.parametrize("theta", (1, 3, 5))
@pytest.mark.parametrize("dataset", ["gowalla", "meetup"])
def test_theta_coverbrs_runtime(benchmark, request, dataset, theta):
    ds, fn = request.getfixturevalue(dataset)
    a, b = ds.query(10)
    tree = ds.quadtree()
    benchmark.pedantic(
        lambda: CoverBRS(c=1 / 3, theta=theta).solve(
            ds.points, fn, a, b, quadtree=tree
        ),
        rounds=1,
        iterations=1,
    )


def test_theta_does_not_change_answers(yelp):
    """theta is a performance knob only (Section 4.5)."""
    ds, fn = yelp
    a, b = ds.query(10)
    scores = {
        theta: SliceBRS(theta=theta).solve(ds.points, fn, a, b).score
        for theta in (1, 3, 5)
    }
    assert len(set(scores.values())) == 1
