"""E10 (Figure 16): scalability with the number of objects.

The paper grows synthetic Gaussian datasets from 20M to 120M objects; we
grow from 5k to 20k here (40k runs in ``run_all.py``) — pure-Python scale,
same construction (388 Foursquare-style categories, 3 labels per object),
same signal: the approximate algorithms scale mildly while the exact one
degrades fastest.
"""

import pytest

from repro.core.coverbrs import CoverBRS
from repro.core.slicebrs import SliceBRS
from repro.datasets.registry import query_size, scalability_dataset

SIZES = (5000, 10000, 20000)


@pytest.fixture(scope="module")
def scalability_bundles():
    bundles = {}
    reference = scalability_dataset(SIZES[0])
    query = query_size(reference.space, SIZES[0], k=10)
    for n in SIZES:
        ds = scalability_dataset(n)
        bundles[n] = (ds, ds.score_function(), query)
    return bundles


@pytest.mark.parametrize("n", SIZES)
def test_fig16_slicebrs(benchmark, scalability_bundles, n):
    ds, fn, (a, b) = scalability_bundles[n]
    benchmark.pedantic(
        lambda: SliceBRS().solve(ds.points, fn, a, b), rounds=1, iterations=1
    )


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("c", [1 / 3, 1 / 2], ids=["cover4", "cover9"])
def test_fig16_coverbrs(benchmark, scalability_bundles, n, c):
    ds, fn, (a, b) = scalability_bundles[n]
    tree = ds.quadtree()
    benchmark.pedantic(
        lambda: CoverBRS(c=c).solve(ds.points, fn, a, b, quadtree=tree),
        rounds=1,
        iterations=1,
    )


def test_fig16_cover_scales_better(scalability_bundles):
    """The headline of Figure 16: the gap widens with n."""
    import time

    gaps = []
    for n in (SIZES[0], SIZES[-1]):
        ds, fn, (a, b) = scalability_bundles[n]
        start = time.perf_counter()
        exact = SliceBRS().solve(ds.points, fn, a, b)
        t_exact = time.perf_counter() - start
        start = time.perf_counter()
        cover = CoverBRS(c=1 / 3).solve(ds.points, fn, a, b, quadtree=ds.quadtree())
        t_cover = time.perf_counter() - start
        assert cover.score >= 0.25 * exact.score - 1e-9
        gaps.append(t_exact / max(t_cover, 1e-9))
    assert gaps[-1] > gaps[0] > 1.0
