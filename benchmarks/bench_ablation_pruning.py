"""A3: pruning-rule ablations.

Two knobs the solver exposes around the paper's stopping rule:

* ``strict_pruning`` — the paper processes entries whose upper bound *ties*
  the incumbent ("stop once the bound is smaller"); strict mode skips them.
  Same answer, different work — the difference is the tie mass, which is
  large exactly on plateau-scoring data (meetup_like).
* ``prune_slices`` — disabling slice pruning scans every slice (needed for
  the #MS census); the ablation shows what slice-level bounds save.
"""

import pytest

from repro.core.slicebrs import SliceBRS


@pytest.mark.parametrize("strict", [False, True], ids=["paper-rule", "strict"])
@pytest.mark.parametrize("dataset", ["meetup", "gowalla"])
def test_ablation_tie_processing_runtime(benchmark, request, dataset, strict):
    ds, fn = request.getfixturevalue(dataset)
    a, b = ds.query(10)
    solver = SliceBRS(strict_pruning=strict)
    benchmark.pedantic(
        lambda: solver.solve(ds.points, fn, a, b), rounds=1, iterations=1
    )


@pytest.mark.parametrize("prune", [True, False], ids=["pruned", "scan-all"])
def test_ablation_slice_pruning_runtime(benchmark, gowalla, prune):
    ds, fn = gowalla
    a, b = ds.query(10)
    solver = SliceBRS(prune_slices=prune)
    benchmark.pedantic(
        lambda: solver.solve(ds.points, fn, a, b), rounds=1, iterations=1
    )


def test_ablation_rules_agree_on_answer(meetup):
    ds, fn = meetup
    a, b = ds.query(10)
    scores = {
        SliceBRS(strict_pruning=True).solve(ds.points, fn, a, b).score,
        SliceBRS(strict_pruning=False).solve(ds.points, fn, a, b).score,
        SliceBRS(prune_slices=False).solve(ds.points, fn, a, b).score,
    }
    assert len(scores) == 1


def test_ablation_strict_mode_does_less_work(meetup):
    """On tie-heavy data the paper rule audits many tied slabs."""
    ds, fn = meetup
    a, b = ds.query(10)
    paper = SliceBRS(strict_pruning=False).solve(ds.points, fn, a, b).stats
    strict = SliceBRS(strict_pruning=True).solve(ds.points, fn, a, b).stats
    assert strict.n_slabs_searched <= paper.n_slabs_searched
