#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation.

Usage::

    python benchmarks/run_all.py                 # everything
    python benchmarks/run_all.py --only table5 fig16
    python benchmarks/run_all.py --list
    python benchmarks/run_all.py --out results/  # also write one txt per table
    python benchmarks/run_all.py --check         # assert every paper shape
    python benchmarks/run_all.py --timeout 30 --json status.json
    python benchmarks/run_all.py --only fig19 --json status.json \\
        --ledger perf-ledger.jsonl --ledger-label nightly

Runtimes are machine-dependent; the reproduced signal is each table's
*shape* (who wins, by what factor, and how the curves move with the swept
parameter).  EXPERIMENTS.md records a reference run next to the paper's
numbers.

With ``--timeout`` each experiment runs under an ambient per-experiment
budget and cannot wedge the run: budget-aware solvers return anytime
answers and any failure is recorded per experiment instead of aborting
everything.  ``--json`` writes one status row per experiment
(ok/degraded/timeout/error, wall seconds, error text) together with a
``metrics`` snapshot of the solver work counters the experiment drove
(slices scanned, slabs searched, candidates scored, ...), plus one final
``lint`` row timing a full invariant-linter pass over the tree, so
analysis cost is tracked alongside solver cost.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS, SHAPE_CHECKS
from repro.bench.harness import run_with_status
from repro.runtime.budget import Budget

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def lint_status_row() -> dict:
    """Time one full linter pass; shaped like an experiment status row."""
    from repro.analysis.baseline import Baseline
    from repro.analysis.cli import DEFAULT_BASELINE, run_lint

    started = time.perf_counter()
    try:
        baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE)
        report = run_lint(["src", "tests"], root=REPO_ROOT, baseline=baseline)
    except (FileNotFoundError, ValueError) as exc:
        return {
            "experiment": "lint",
            "status": "error",
            "seconds": round(time.perf_counter() - started, 3),
            "error": str(exc),
            "metrics": None,
        }
    return {
        "experiment": "lint",
        "status": "ok" if report.clean else "error",
        "seconds": round(time.perf_counter() - started, 3),
        "error": None if report.clean else f"{len(report.findings)} finding(s)",
        "metrics": {
            "files_scanned": report.files_scanned,
            "findings": len(report.findings),
            "baselined": len(report.baselined),
            "suppressed": report.suppressed_count,
        },
    }


def interprocedural_lint_status_row() -> dict:
    """Time the whole-program pass (call graph + BRS010–BRS012) alone.

    Tracked as its own ledger row so a perf regression in call-graph
    construction (the expensive part) is visible separately from the
    per-file rules.
    """
    from repro.analysis.baseline import Baseline
    from repro.analysis.cli import DEFAULT_BASELINE
    from repro.analysis.concurrency import run_interprocedural

    started = time.perf_counter()
    try:
        baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE)
        findings, suppressed, payload = run_interprocedural(REPO_ROOT)
        new = [f for f in findings if not baseline.contains(f.fingerprint)]
    except (FileNotFoundError, ValueError) as exc:
        return {
            "experiment": "interprocedural-lint",
            "status": "error",
            "seconds": round(time.perf_counter() - started, 3),
            "error": str(exc),
            "metrics": None,
        }
    return {
        "experiment": "interprocedural-lint",
        "status": "ok" if not new else "error",
        "seconds": round(time.perf_counter() - started, 3),
        "error": None if not new else f"{len(new)} finding(s)",
        "metrics": {
            "functions": len(payload["functions"]),
            "lock_edges": len(payload["lock_graph"]["edges"]),
            "findings": len(new),
            "baselined": len(findings) - len(new),
            "suppressed": suppressed,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="EXPERIMENT",
        help="subset of experiment ids to run (see --list)",
    )
    parser.add_argument("--list", action="store_true", help="list experiment ids")
    parser.add_argument(
        "--out", type=pathlib.Path, help="directory to also write per-table .txt files"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="assert each experiment's reproduced shape; exit nonzero on failure",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-experiment wall-clock budget in seconds",
    )
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        dest="json_out",
        help="write per-experiment status rows (ok/degraded/timeout/error) here",
    )
    parser.add_argument(
        "--ledger",
        type=pathlib.Path,
        help="also append this run's status rows to a perf ledger "
             "(JSONL, see repro.obs.ledger)",
    )
    parser.add_argument(
        "--ledger-label",
        default="",
        dest="ledger_label",
        help="label for the appended ledger record (e.g. 'nightly', 'ci')",
    )
    args = parser.parse_args(argv)

    if args.list:
        for key, fn in ALL_EXPERIMENTS.items():
            print(f"{key:12s} {fn.__doc__.splitlines()[0]}")
        return 0

    selected = args.only or list(ALL_EXPERIMENTS)
    unknown = [key for key in selected if key not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; use --list", file=sys.stderr)
        return 2

    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)

    all_failures = []
    status_rows = []
    for key in selected:
        budget = Budget.of(timeout=args.timeout, max_evals=None)
        outcome = run_with_status(
            ALL_EXPERIMENTS[key],
            budget=budget,
            collect_metrics=bool(args.json_out or args.ledger),
        )
        status_rows.append(
            {
                "experiment": key,
                "status": outcome.status,
                "seconds": round(outcome.seconds, 3),
                "error": outcome.error,
                "metrics": outcome.metrics,
            }
        )
        if outcome.status == "error":
            print(f"[{key} FAILED: {outcome.error}]\n", file=sys.stderr)
            all_failures.append(f"{key}: {outcome.error}")
            continue
        tables = outcome.result
        for table in tables:
            text = table.render()
            print(text)
            if args.out:
                name = table.experiment.lower().replace(" ", "")
                (args.out / f"{name}.txt").write_text(text)
        if args.check and key in SHAPE_CHECKS:
            failures = SHAPE_CHECKS[key](tables)
            for failure in failures:
                print(f"SHAPE CHECK FAILED: {failure}", file=sys.stderr)
            all_failures.extend(failures)
        print(f"[{key} completed in {outcome.seconds:.1f}s, "
              f"status={outcome.status}]\n")
    if args.json_out or args.ledger:
        status_rows.append(lint_status_row())
        status_rows.append(interprocedural_lint_status_row())
    if args.json_out:
        args.json_out.write_text(json.dumps(status_rows, indent=2) + "\n")
    if args.ledger:
        from repro.obs.ledger import Ledger, record_from_status

        record = record_from_status(
            status_rows, label=args.ledger_label, cwd=str(REPO_ROOT)
        )
        Ledger(str(args.ledger)).append(record)
        print(f"[ledger: appended run {record.run_id} to {args.ledger}]")
    if args.check:
        if all_failures:
            print(f"{len(all_failures)} shape check(s) failed", file=sys.stderr)
            return 1
        print("all shape checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
