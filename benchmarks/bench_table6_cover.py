"""E8 (Table 6): usefulness of the c-cover (c = 1/3, 10q)."""

import pytest

from repro.core.coverbrs import CoverBRS
from repro.cover.quadtree_cover import select_cover


@pytest.mark.parametrize("dataset", ["brightkite", "gowalla", "yelp", "meetup"])
def test_table6_cover_selection_runtime(benchmark, request, dataset):
    """Timing of the O(n) quadtree cover selection itself."""
    ds, _ = request.getfixturevalue(dataset)
    a, b = ds.query(10)
    tree = ds.quadtree()
    cover = benchmark.pedantic(
        lambda: select_cover(ds.points, 1 / 3, a, b, quadtree=tree),
        rounds=3,
        iterations=1,
    )
    assert cover.size <= len(ds.points)


@pytest.mark.parametrize("dataset", ["brightkite", "gowalla", "yelp"])
def test_table6_cover_shrinks_instance(request, dataset):
    """|T| < |O| and the reduced search does less candidate work than the
    exact one (Table 6's point)."""
    from repro.core.slicebrs import SliceBRS

    ds, fn = request.getfixturevalue(dataset)
    a, b = ds.query(10)
    cover_result = CoverBRS(c=1 / 3).solve(
        ds.points, fn, a, b, quadtree=ds.quadtree()
    )
    exact_result = SliceBRS().solve(ds.points, fn, a, b)
    cs = cover_result.cover_stats
    assert cs.n_cover < len(ds.points)
    assert cover_result.stats.n_candidates <= max(1, exact_result.stats.n_candidates)
