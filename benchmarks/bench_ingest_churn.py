"""Ingest-churn benchmark: durable append latency and serving under mutation.

Two measurements around the `repro.ingest` pipeline:

* the cost of one durable append (WAL fsync + incremental index apply +
  snapshot flip + regional cache invalidation) on a live served dataset;
* the registered ``ingest`` experiment (`python benchmarks/run_all.py
  --json --only ingest` runs the same code through the shape check:
  churn hit-rate > 0 with > 0 regional evictions).
"""

import pathlib
import tempfile
from random import Random

import pytest

from repro.datasets.registry import scalability_dataset
from repro.ingest import IngestLog, IngestPipeline, live_from_diversity
from repro.ingest.events import Insert

BENCH_N = 2_000


@pytest.mark.parametrize("sync", [True, False], ids=["fsync", "nosync"])
def test_durable_append_latency(benchmark, sync, tmp_path):
    ds = scalability_dataset(BENCH_N, seed=7)
    live = live_from_diversity(ds)
    rng = Random(41)
    space = ds.space
    pipe = IngestPipeline(
        live, IngestLog(tmp_path / f"wal-{sync}.jsonl", sync=sync)
    )

    def one_batch():
        pipe.append(
            [
                Insert(
                    rng.uniform(space.x_min, space.x_max),
                    rng.uniform(space.y_min, space.y_max),
                    payload=[1],
                )
                for _ in range(4)
            ]
        )

    benchmark.pedantic(one_batch, rounds=20, iterations=1)
    pipe.close()
    assert pipe.live.n_alive == BENCH_N + 20 * 4


def test_churn_experiment_shape():
    from repro.bench.experiments import _check_ingest, ingest_churn

    tables = ingest_churn(n_objects=400, n_rounds=4)
    assert _check_ingest(tables) == []
