"""E11 (Table 7): adapted SliceBRS vs OE on the MaxRS problem."""

import pytest

from repro.core.maxrs import oe_maxrs, slicebrs_maxrs

K_VALUES = (5, 10, 15, 20)


@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.parametrize("solver", ["adapted", "oe"])
@pytest.mark.parametrize("dataset", ["brightkite", "gowalla", "yelp", "meetup"])
def test_table7_runtime(benchmark, request, dataset, solver, k):
    ds, _ = request.getfixturevalue(dataset)
    a, b = ds.query(k)
    fn = (
        (lambda: slicebrs_maxrs(ds.points, a, b))
        if solver == "adapted"
        else (lambda: oe_maxrs(ds.points, a, b))
    )
    benchmark.pedantic(fn, rounds=2, iterations=1)


@pytest.mark.parametrize("dataset", ["brightkite", "gowalla", "yelp", "meetup"])
def test_table7_solvers_agree(request, dataset):
    ds, _ = request.getfixturevalue(dataset)
    a, b = ds.query(10)
    assert slicebrs_maxrs(ds.points, a, b).score == pytest.approx(
        oe_maxrs(ds.points, a, b).score
    )


def test_table7_adapted_faster_on_clustered_data(gowalla):
    """The Appendix C.2 claim: pruned slices make the adaptation cheaper
    than the full OE sweep (paper: 20-40% of OE's time)."""
    import time

    ds, _ = gowalla
    a, b = ds.query(10)
    start = time.perf_counter()
    slicebrs_maxrs(ds.points, a, b)
    t_adapted = time.perf_counter() - start
    start = time.perf_counter()
    oe_maxrs(ds.points, a, b)
    t_oe = time.perf_counter() - start
    assert t_adapted < t_oe
