"""Substrate ablation: grid vs R-tree range queries, quadtree build cost.

Not a paper experiment — a systems sanity bench for the index layer the
solvers and sessions sit on.  The grid should win at its design scale (one
known query size); the R-tree should stay robust across scales.
"""

import random

import pytest

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.index.grid import GridIndex
from repro.index.quadtree import Quadtree
from repro.index.rtree import RTree


@pytest.fixture(scope="module")
def cloud():
    rng = random.Random(42)
    points = [
        Point(rng.uniform(0, 1000), rng.uniform(0, 1000)) for _ in range(20000)
    ]
    queries = []
    for scale in (5.0, 50.0, 300.0):
        for _ in range(60):
            x, y = rng.uniform(0, 1000 - scale), rng.uniform(0, 1000 - scale)
            queries.append(Rect(x, x + scale, y, y + scale))
    return points, queries


@pytest.mark.parametrize("index_kind", ["grid", "rtree"])
def test_range_query_throughput(benchmark, cloud, index_kind):
    points, queries = cloud
    if index_kind == "grid":
        index = GridIndex(points, cell_size=50.0)
    else:
        index = RTree(points)
    benchmark.pedantic(
        lambda: sum(len(index.query_rect(q)) for q in queries),
        rounds=2,
        iterations=1,
    )


@pytest.mark.parametrize("index_kind", ["grid", "rtree", "quadtree"])
def test_build_cost(benchmark, cloud, index_kind):
    points, _ = cloud
    builders = {
        "grid": lambda: GridIndex(points, cell_size=50.0),
        "rtree": lambda: RTree(points),
        "quadtree": lambda: Quadtree(points),
    }
    benchmark.pedantic(builders[index_kind], rounds=1, iterations=1)


def test_indexes_agree(cloud):
    points, queries = cloud
    grid = GridIndex(points, cell_size=50.0)
    rtree = RTree(points)
    for query in queries[:30]:
        assert sorted(grid.query_rect(query)) == sorted(rtree.query_rect(query))
