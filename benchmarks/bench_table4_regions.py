"""E5 (Table 4): disjoint regions vs maximal regions at 10q."""

import pytest

from repro.core.siri import build_siri_rows
from repro.core.sweep import count_maximal_regions, scan_slabs
from repro.geometry.arrangement import count_arrangement_cells
from repro.geometry.rect import Rect


def _counts(bundle):
    ds, fn = bundle
    a, b = ds.query(10)
    rows = build_siri_rows(ds.points, a, b)
    n_dr = count_arrangement_cells(Rect(r[0], r[1], r[2], r[3]) for r in rows)
    slabs = scan_slabs(rows, fn.evaluator())
    n_mr = count_maximal_regions(rows, slabs)
    return n_dr, n_mr


@pytest.mark.parametrize("dataset", ["brightkite", "gowalla", "yelp", "meetup"])
def test_table4_census_runtime(benchmark, request, dataset):
    bundle = request.getfixturevalue(dataset)
    n_dr, n_mr = benchmark.pedantic(lambda: _counts(bundle), rounds=1, iterations=1)
    # Table 4's claim: maximal regions are a tiny fraction of disjoint
    # regions (the paper observes ~1%).
    assert n_mr < 0.05 * n_dr
    assert n_mr > 0
