"""Top-k region search benchmark (the paper's future-work extension)."""

import pytest

from repro.core.topk import topk_regions
from repro.functions.weighted_sum import SumFunction


@pytest.mark.parametrize("k", [1, 3, 5])
def test_topk_runtime(benchmark, gowalla, k):
    ds, _ = gowalla
    a, b = ds.query(10)
    fn = SumFunction(len(ds.points))
    benchmark.pedantic(
        lambda: topk_regions(ds.points, fn, a, b, k=k), rounds=1, iterations=1
    )


def test_topk_costs_grow_sublinearly(gowalla):
    """Each round solves a shrinking instance, so k rounds cost less than
    k times one round — the practical argument for greedy top-k."""
    import time

    ds, _ = gowalla
    a, b = ds.query(10)
    fn = SumFunction(len(ds.points))

    start = time.perf_counter()
    one = topk_regions(ds.points, fn, a, b, k=1)
    t_one = time.perf_counter() - start

    start = time.perf_counter()
    five = topk_regions(ds.points, fn, a, b, k=5)
    t_five = time.perf_counter() - start

    assert len(five) == 5
    assert five[0].score == one[0].score
    assert t_five < 5.5 * t_one


def test_topk_diversity_application(yelp):
    """Top-k on the diversity function returns disjoint, ordered regions."""
    ds, fn = yelp
    a, b = ds.query(10)
    results = topk_regions(ds.points, fn, a, b, k=3)
    scores = [r.score for r in results]
    assert scores == sorted(scores, reverse=True)
    claimed = set()
    for result in results:
        assert not claimed & set(result.object_ids)
        claimed.update(result.object_ids)
