"""A1: incremental evaluation ablation.

DESIGN.md calls out incremental (push/pop) evaluation as a core design
choice.  This ablation runs the same SliceBRS query with the coverage
function's O(delta) counting evaluator versus the generic lazy
recompute-on-read fallback.

Measured nuance worth keeping: the win tracks the read/update ratio.  On
the influence workloads (few, large RR-membership label sets; bounds read
at every slab and candidate) incremental evaluation is clearly faster; on
meetup_like (many pushes of 14-tag objects, small active sets) the lazy
fallback is competitive.  Both always return the same answer — the choice
is purely a performance profile, which is exactly what an ablation bench
is for.
"""

import time

import pytest

from repro.core.slicebrs import SliceBRS
from repro.functions.base import SetFunction


class _RecomputeOnly(SetFunction):
    """Strips a function down to batch evaluation (fallback evaluator)."""

    def __init__(self, inner: SetFunction) -> None:
        self._inner = inner

    def value(self, objects):
        return self._inner.value(objects)


@pytest.mark.parametrize("mode", ["incremental", "recompute"])
@pytest.mark.parametrize("dataset", ["gowalla", "yelp", "meetup"])
def test_ablation_evaluator_runtime(benchmark, request, dataset, mode):
    ds, fn = request.getfixturevalue(dataset)
    a, b = ds.query(10)
    solver = SliceBRS()
    target = fn if mode == "incremental" else _RecomputeOnly(fn)
    benchmark.pedantic(
        lambda: solver.solve(ds.points, target, a, b), rounds=1, iterations=1
    )


@pytest.mark.parametrize("dataset", ["gowalla", "yelp", "meetup"])
def test_ablation_evaluator_same_answer(request, dataset):
    ds, fn = request.getfixturevalue(dataset)
    a, b = ds.query(10)
    solver = SliceBRS()
    fast = solver.solve(ds.points, fn, a, b)
    slow = solver.solve(ds.points, _RecomputeOnly(fn), a, b)
    assert fast.score == pytest.approx(slow.score)


def test_ablation_incremental_wins_on_influence(gowalla):
    """Influence functions have heavyweight batch evaluation (RR-set
    unions), so the incremental evaluator must come out ahead there."""
    ds, fn = gowalla
    a, b = ds.query(10)
    solver = SliceBRS()

    start = time.perf_counter()
    solver.solve(ds.points, fn, a, b)
    t_fast = time.perf_counter() - start

    start = time.perf_counter()
    solver.solve(ds.points, _RecomputeOnly(fn), a, b)
    t_slow = time.perf_counter() - start

    assert t_slow > 1.2 * t_fast
