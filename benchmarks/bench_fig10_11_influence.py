"""E1+E2 (Figures 10 and 11): most influential region — quality and runtime.

The benchmark timings regenerate Figure 11's series; the quality assertions
pin Figure 10's shape (SliceBRS >= CoverBRS variants >= bound; OE worst).
"""

import pytest

from repro.core.coverbrs import CoverBRS
from repro.core.maxrs import oe_maxrs
from repro.core.slicebrs import SliceBRS

K_VALUES = (1, 5, 10, 15, 20)


def _solve_case(bundle, k, algo):
    ds, fn = bundle
    a, b = ds.query(k)
    if algo == "slice":
        return lambda: SliceBRS().solve(ds.points, fn, a, b)
    if algo == "cover4":
        tree = ds.quadtree()
        return lambda: CoverBRS(c=1 / 3).solve(ds.points, fn, a, b, quadtree=tree)
    if algo == "cover9":
        tree = ds.quadtree()
        return lambda: CoverBRS(c=1 / 2).solve(ds.points, fn, a, b, quadtree=tree)
    return lambda: oe_maxrs(ds.points, a, b)


@pytest.mark.parametrize("k", K_VALUES)
@pytest.mark.parametrize("algo", ["slice", "cover4", "cover9", "oe"])
@pytest.mark.parametrize("dataset", ["brightkite", "gowalla"])
def test_fig11_runtime(benchmark, request, dataset, algo, k):
    bundle = request.getfixturevalue(dataset)
    benchmark.pedantic(_solve_case(bundle, k, algo), rounds=2, iterations=1)


@pytest.mark.parametrize("dataset", ["brightkite", "gowalla"])
def test_fig10_quality_shape(request, dataset):
    """Figure 10: exact best, covers within bound, OE clearly behind."""
    ds, fn = request.getfixturevalue(dataset)
    a, b = ds.query(10)
    exact = SliceBRS().solve(ds.points, fn, a, b)
    tree = ds.quadtree()
    c4 = CoverBRS(c=1 / 3).solve(ds.points, fn, a, b, quadtree=tree)
    c9 = CoverBRS(c=1 / 2).solve(ds.points, fn, a, b, quadtree=tree)
    oe_quality = fn.value(oe_maxrs(ds.points, a, b).object_ids)
    assert exact.score >= c4.score >= 0.25 * exact.score - 1e-9
    assert exact.score >= c9.score >= exact.score / 9.0 - 1e-9
    assert oe_quality < exact.score
