"""Shared fixtures for the benchmark suite.

Datasets and score functions are cached at session scope via the same
registry the experiment driver uses, so ``pytest benchmarks/`` and
``python benchmarks/run_all.py`` measure identical instances.
"""

from __future__ import annotations

import pytest

from repro.bench.experiments import _dataset, _score_function


def _bundle(name: str):
    ds = _dataset(name)
    return ds, _score_function(name)


@pytest.fixture(scope="session")
def brightkite():
    return _bundle("brightkite_like")


@pytest.fixture(scope="session")
def gowalla():
    return _bundle("gowalla_like")


@pytest.fixture(scope="session")
def yelp():
    return _bundle("yelp_like")


@pytest.fixture(scope="session")
def meetup():
    return _bundle("meetup_like")


@pytest.fixture(scope="session")
def all_datasets(brightkite, gowalla, yelp, meetup):
    return {
        "brightkite_like": brightkite,
        "gowalla_like": gowalla,
        "yelp_like": yelp,
        "meetup_like": meetup,
    }
