"""Multiprocessing shard-backend benchmark: serial vs process pool.

Measures :func:`repro.parallel.solve_partitioned` on the Section 6.5
scalability construction (Gaussian points, seeded SumFunction weights) at
paper scale — 200k objects by default, scaled down on boxes without the
cores to exercise a pool.  `python benchmarks/run_all.py --json` runs the
same comparison through the registered ``parallel`` experiment and shape
check (identical scores always; >= 1.5x speedup with 4 workers on a
>= 4-core machine).
"""

import os
from random import Random

import pytest

from repro.datasets.registry import query_size, scalability_dataset
from repro.functions.weighted_sum import SumFunction
from repro.parallel import solve_partitioned

#: Full paper-scale size on multi-core machines; a size the serial solve
#: finishes in seconds where a pool could not win anyway.
BENCH_N = 200_000 if (os.cpu_count() or 1) >= 4 else 20_000


def _instance(n_objects: int):
    ds = scalability_dataset(n_objects, seed=7)
    rng = Random(99)
    fn = SumFunction(n_objects, [rng.random() for _ in range(n_objects)])
    a, b = query_size(ds.space, n_objects, k=10)
    return ds.points, fn, a, b


@pytest.mark.parametrize("workers", [0, 2, 4])
def test_parallel_runtime(benchmark, workers):
    points, fn, a, b = _instance(BENCH_N)
    benchmark.pedantic(
        lambda: solve_partitioned(
            points, fn, a, b, n_parts=8, workers=workers
        ),
        rounds=1,
        iterations=1,
    )


def test_parallel_matches_serial():
    points, fn, a, b = _instance(BENCH_N)
    serial = solve_partitioned(points, fn, a, b, n_parts=8)
    pool = solve_partitioned(points, fn, a, b, n_parts=8, workers=4)
    assert pool.score == pytest.approx(serial.score)
