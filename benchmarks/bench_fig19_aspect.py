"""E12 (Figure 19): effect of the query rectangle's aspect ratio."""

import pytest

from repro.core.coverbrs import CoverBRS
from repro.core.slicebrs import SliceBRS

ASPECTS = {"1:3": 1 / 3, "1:2": 0.5, "1:1": 1.0, "2:1": 2.0, "3:1": 3.0}


@pytest.mark.parametrize("aspect", list(ASPECTS), ids=list(ASPECTS))
@pytest.mark.parametrize("algo", ["slice", "cover4"])
def test_fig19_runtime(benchmark, gowalla, algo, aspect):
    ds, fn = gowalla
    a, b = ds.query(10, aspect=ASPECTS[aspect])
    if algo == "slice":
        run = lambda: SliceBRS().solve(ds.points, fn, a, b)  # noqa: E731
    else:
        tree = ds.quadtree()
        run = lambda: CoverBRS(c=1 / 3).solve(  # noqa: E731
            ds.points, fn, a, b, quadtree=tree
        )
    benchmark.pedantic(run, rounds=2, iterations=1)


def test_fig19_all_aspects_solve_correctly(gowalla):
    """Sanity across aspects: the solvers agree on quality invariants."""
    ds, fn = gowalla
    for aspect in ASPECTS.values():
        a, b = ds.query(10, aspect=aspect)
        exact = SliceBRS().solve(ds.points, fn, a, b)
        cover = CoverBRS(c=1 / 3).solve(ds.points, fn, a, b, quadtree=ds.quadtree())
        assert 0.25 * exact.score - 1e-9 <= cover.score <= exact.score + 1e-9
